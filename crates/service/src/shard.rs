//! Horizontal partitioning with **cross-shard clearing**: participants
//! hash onto M [`DataMarket`] shards that share one
//! [`dmp_core::market::MarketSubstrate`] (catalog + licensing terms +
//! settlement ledger), and every round runs as a two-phase exchange:
//!
//! 1. **Candidate phase** (shard-parallel, rayon): each shard runs
//!    expiry + candidate generation under one coordinator-issued round
//!    seed and exports a serializable [`CandidateSet`] — it does *not*
//!    clear locally;
//! 2. **Exchange phase** (global): the [`ExchangeStage`] merges all
//!    shards' candidate sets in global offer-id order and runs the
//!    pricing engine **once** over the unified match graph, so bids
//!    from different shards compete for the same products;
//! 3. **Settlement phase** (ordered): cleared sales are routed back to
//!    the shard owning each buyer and settled in global offer-id order
//!    against the shared ledger, so money flows (including to sellers
//!    whose accounts hash to other shards) land exactly where a
//!    1-shard market would put them.
//!
//! Routing is by stable FNV-1a hash of the participant name, offer ids
//! are allocated globally by the router, and all shards tie-break from
//! the same round seed — together this makes sharding a **performance
//! detail, not a semantics change**: an M-shard deployment clears the
//! same trades, at the same prices, into the same balances as the
//! 1-shard market for the same command stream (pinned by the
//! `shard_equivalence` test suite).

use std::sync::Arc;

use dmp_core::arbiter::pipeline::{
    connected_components, CandidatePhaseExport, CandidateSet, RoundContext, SettlementPlan,
};
use dmp_core::arbiter::pricing::{clear, RoundBid, Sale};
use dmp_core::market::{
    DataMarket, MarketConfig, MarketShardState, MarketSubstrate, RoundReport, SubstrateImage,
};
use dmp_core::trust::{AuditEvent, DisputeState};
use dmp_mechanism::design::MarketDesign;
use dmp_mechanism::elicitation::ElicitationProtocol;
use dmp_mechanism::wtp::{IntrinsicConstraints, PriceCurve, TaskKind, WtpFunction};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use dmp_relation::{DatasetId, Relation, Value};

use crate::command::Command;
use crate::error::ServiceError;
use crate::wire::Json;

/// FNV-1a 64-bit hash (stable across processes and platforms; the
/// routing function must never change under replay).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What applying one [`Command`] produced (the gateway serializes this
/// into the HTTP response body).
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Participant enrolled (idempotent).
    Enrolled {
        /// Principal name.
        name: String,
        /// Owning shard.
        shard: usize,
    },
    /// Funds minted.
    Deposited {
        /// Account name.
        account: String,
        /// Balance after the deposit.
        balance: f64,
    },
    /// Offer accepted into a shard's offer book.
    OfferAccepted {
        /// Shard-local offer id.
        offer: u64,
        /// Owning shard.
        shard: usize,
    },
    /// Dataset registered (and reserve/license applied when given).
    AskAccepted {
        /// Shard-local dataset id.
        dataset: u64,
        /// Owning shard.
        shard: usize,
    },
    /// License attached.
    LicenseGranted {
        /// Dataset id.
        dataset: u64,
        /// Owning shard.
        shard: usize,
    },
    /// Rounds executed across all shards.
    RoundsRun(Vec<MergedRoundReport>),
}

impl Outcome {
    /// JSON form for gateway responses.
    pub fn to_json(&self) -> Json {
        match self {
            Outcome::Enrolled { name, shard } => Json::obj([
                ("enrolled", Json::str(name.clone())),
                ("shard", Json::Num(*shard as f64)),
            ]),
            Outcome::Deposited { account, balance } => Json::obj([
                ("account", Json::str(account.clone())),
                ("balance", Json::Num(*balance)),
            ]),
            Outcome::OfferAccepted { offer, shard } => Json::obj([
                ("offer", Json::Num(*offer as f64)),
                ("shard", Json::Num(*shard as f64)),
            ]),
            Outcome::AskAccepted { dataset, shard } => Json::obj([
                ("dataset", Json::Num(*dataset as f64)),
                ("shard", Json::Num(*shard as f64)),
            ]),
            Outcome::LicenseGranted { dataset, shard } => Json::obj([
                ("licensed", Json::Num(*dataset as f64)),
                ("shard", Json::Num(*shard as f64)),
            ]),
            Outcome::RoundsRun(reports) => Json::obj([(
                "rounds",
                Json::Arr(reports.iter().map(MergedRoundReport::to_json).collect()),
            )]),
        }
    }
}

/// Per-shard round reports merged into platform-level totals.
#[derive(Debug, Clone)]
pub struct MergedRoundReport {
    /// Round number (uniform across shards).
    pub round: u64,
    /// Offers considered, summed over shards.
    pub considered: usize,
    /// Sales cleared, summed over shards.
    pub sales: usize,
    /// Cleared sales whose winning mashup contains at least one dataset
    /// owned by a seller on a *different* shard than the buyer — trades
    /// that per-shard clearing could never have produced.
    pub cross_shard: usize,
    /// Revenue collected (ex ante), summed.
    pub revenue: f64,
    /// Arbiter fees collected, summed.
    pub fees: f64,
    /// Offers expired, summed.
    pub expired: usize,
    /// Ex post deliveries created, summed.
    pub deliveries: usize,
    /// Conflict components the round's cleared sales partitioned into
    /// (settlement plans within different components touch disjoint
    /// accounts and datasets, so they were computed concurrently).
    pub components: usize,
    /// The raw per-shard reports (shard index = position).
    pub per_shard: Vec<RoundReport>,
}

impl MergedRoundReport {
    /// Merge one report per shard (position = shard index).
    pub fn merge(per_shard: Vec<RoundReport>) -> Self {
        MergedRoundReport {
            round: per_shard.first().map(|r| r.round).unwrap_or(0),
            considered: per_shard.iter().map(|r| r.considered).sum(),
            sales: per_shard.iter().map(|r| r.sales.len()).sum(),
            cross_shard: 0,
            revenue: per_shard.iter().map(|r| r.revenue).sum(),
            fees: per_shard.iter().map(|r| r.fees).sum(),
            expired: per_shard.iter().map(|r| r.expired).sum(),
            deliveries: per_shard.iter().map(|r| r.deliveries.len()).sum(),
            components: 0,
            per_shard,
        }
    }

    /// JSON form for gateway responses.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("round", Json::Num(self.round as f64)),
            ("considered", Json::Num(self.considered as f64)),
            ("sales", Json::Num(self.sales as f64)),
            ("cross_shard", Json::Num(self.cross_shard as f64)),
            ("revenue", Json::Num(self.revenue)),
            ("fees", Json::Num(self.fees)),
            ("expired", Json::Num(self.expired as f64)),
            ("deliveries", Json::Num(self.deliveries as f64)),
            ("components", Json::Num(self.components as f64)),
        ])
    }
}

/// A round's candidate phase, delegated to remote shard workers.
///
/// The coordinator's [`ShardRouter`] consults its distributor (when one
/// is attached) at the top of every round: `candidates` may farm the
/// expensive candidate phase out to worker processes and return one
/// [`CandidatePhaseExport`] per shard (in shard order), or `None` to
/// fall back to local computation (e.g. every worker is dead — the
/// round must still complete, and journal replay always takes the local
/// path because the distributor is attached only after recovery).
/// After the coordinator settles the round authoritatively,
/// `round_complete` broadcasts the full export set so every worker can
/// re-execute settlement locally and stay a bit-exact replica.
pub trait RoundDistributor: Send + Sync {
    /// Compute the candidate phase for `round` under `round_seed`,
    /// returning one export per shard (`shards` total, shard order), or
    /// `None` to compute locally.
    fn candidates(
        &self,
        round: u64,
        round_seed: u64,
        shards: usize,
    ) -> Option<Vec<CandidatePhaseExport>>;

    /// The round cleared and settled on the coordinator; `exports`
    /// holds every shard's candidate phase so workers can replay it.
    fn round_complete(&self, round: u64, round_seed: u64, exports: &[CandidatePhaseExport]);
}

/// The global clearing pass of a two-phase round: merge every shard's
/// [`CandidateSet`] into one bid list (global offer-id order — the same
/// order a 1-shard market would see) and run the pricing engine once
/// over it.
pub struct ExchangeStage {
    design: MarketDesign,
}

impl ExchangeStage {
    /// An exchange clearing under the deployment's market design.
    pub fn new(design: MarketDesign) -> Self {
        ExchangeStage { design }
    }

    /// Merge candidate sets into one bid list sorted by global offer
    /// id. Offer ids are router-allocated and globally unique, so the
    /// merged order is identical to the order a 1-shard offer book
    /// would have produced. Takes the sets by value — this is the
    /// per-round hot path, and the bids move rather than clone.
    pub fn merge(sets: Vec<CandidateSet>) -> Vec<RoundBid> {
        let mut bids: Vec<RoundBid> = sets.into_iter().flat_map(|s| s.bids).collect();
        bids.sort_by_key(|b| b.offer_id);
        bids
    }

    /// Clear the merged candidate graph: one global pricing pass, so
    /// bids from different shards compete for the same product.
    /// Returned sales are sorted by global offer id (the contract of
    /// [`clear`]), which phase 3 relies on for settlement order.
    pub fn clear(&self, sets: Vec<CandidateSet>) -> Vec<Sale> {
        clear(&self.design, &Self::merge(sets))
    }
}

/// Router-global mutable state: the global offer-id allocator and the
/// round-seed coordinator. Both must be shard-count-independent — the
/// per-offer tie-break streams derive from `(round_seed, offer_id)`, so
/// sharing one allocator and one seed stream across shards is what lets
/// an M-shard round replay the 1-shard round bid-for-bid.
struct RouterState {
    next_offer: u64,
    round_rng: StdRng,
}

/// M market shards over one shared substrate, behind one routing
/// function and one two-phase exchange.
pub struct ShardRouter {
    shards: Vec<DataMarket>,
    exchange: ExchangeStage,
    state: Mutex<RouterState>,
    /// Rounds completed since this router was built (replay included).
    /// Atomic so the gateway's `/health` — served inline on the reactor
    /// thread — never takes a shard lock a running round might hold.
    rounds: std::sync::atomic::AtomicU64,
    /// Candidate-phase delegation (coordinator role). `None` — the
    /// default, and always the state during journal replay — computes
    /// every round locally.
    distributor: Mutex<Option<Arc<dyn RoundDistributor>>>,
}

impl ShardRouter {
    /// Deploy `shards` markets from one base config onto a **shared
    /// substrate** (catalog, licensing terms, ledger). Shard `i` seeds
    /// its private RNG with `base.seed + i`; round seeds themselves come
    /// from the router's coordinator stream (seeded with `base.seed`,
    /// matching what a standalone 1-shard market would draw).
    pub fn new(base: &MarketConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        let substrate = MarketSubstrate::new();
        let markets: Vec<DataMarket> = (0..shards)
            .map(|i| {
                let mut cfg = base.clone();
                cfg.seed = base.seed.wrapping_add(i as u64);
                DataMarket::with_substrate(cfg, substrate.clone())
            })
            .collect();
        ShardRouter {
            shards: markets,
            exchange: ExchangeStage::new(base.design.clone()),
            state: Mutex::new(RouterState {
                next_offer: 0,
                round_rng: StdRng::seed_from_u64(base.seed),
            }),
            rounds: std::sync::atomic::AtomicU64::new(0),
            distributor: Mutex::new(None),
        }
    }

    /// Attach a [`RoundDistributor`]: subsequent rounds farm the
    /// candidate phase out through it. Call only *after* recovery
    /// replay so replayed rounds recompute locally (the distributed and
    /// local paths are pinned bit-identical, so either replays the same
    /// state — but replay must not depend on worker availability).
    pub fn set_distributor(&self, d: Arc<dyn RoundDistributor>) {
        *self.distributor.lock() = Some(d);
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The round seed the *next* round will draw, without advancing the
    /// coordinator stream. Workers use this to verify that a candidate
    /// request carries the seed their own replica would draw — a
    /// mismatched seed means coordinator and worker have diverged.
    pub fn predict_round_seed(&self) -> u64 {
        let mut probe = self.state.lock().round_rng.clone();
        probe.gen::<u64>()
    }

    /// Draw the next round seed, advancing the coordinator stream.
    pub fn draw_round_seed(&self) -> u64 {
        self.state.lock().round_rng.gen::<u64>()
    }

    /// Rounds completed since construction — lock-free (the reactor
    /// thread reads this for `/health` while rounds run on the pool).
    pub fn rounds_completed(&self) -> u64 {
        self.rounds.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The shard owning a participant name.
    pub fn shard_of(&self, name: &str) -> usize {
        (fnv1a(name.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Direct shard access (diagnostics, tests, digests).
    pub fn shard(&self, i: usize) -> &DataMarket {
        self.market_at(i)
    }

    /// The single audited index into the shard vector: `shards` is
    /// non-empty by construction and every internal index is either 0
    /// or comes from [`ShardRouter::shard_of`], which reduces modulo
    /// `shards.len()`.
    fn market_at(&self, shard: usize) -> &DataMarket {
        // dmp-lint: allow(panic-indexing) -- shards is non-empty by construction; indices are 0 or shard_of results, reduced mod shards.len()
        &self.shards[shard]
    }

    /// All shards.
    pub fn shards(&self) -> &[DataMarket] {
        &self.shards
    }

    /// Apply one command, routing by the participant it names. Errors
    /// from the market (unknown participant, refused registration, ...)
    /// surface as [`ServiceError::Rejected`].
    pub fn apply(&self, cmd: &Command) -> Result<Outcome, ServiceError> {
        match cmd {
            Command::Enroll { name, role } => {
                let shard = self.shard_of(name);
                self.market_at(shard).enroll(name.clone(), role.clone());
                Ok(Outcome::Enrolled {
                    name: name.clone(),
                    shard,
                })
            }
            Command::Deposit { account, amount } => {
                if *amount < 0.0 || !amount.is_finite() {
                    return Err(ServiceError::Rejected(
                        "deposit amount must be a non-negative finite number".into(),
                    ));
                }
                if *amount > dmp_core::arbiter::ledger::MAX_AMOUNT {
                    return Err(ServiceError::Rejected(format!(
                        "deposit amount exceeds the ledger maximum of {} credits",
                        dmp_core::arbiter::ledger::MAX_AMOUNT
                    )));
                }
                let shard = self.shard_of(account);
                let market = self.market_at(shard);
                // Only enrolled principals (and the arbiter) hold
                // accounts: minting into an unknown name would create a
                // balance `GET /ledger/:name` then denies exists.
                if market.participant(account).is_none()
                    && account != dmp_core::market::ARBITER_ACCOUNT
                {
                    return Err(ServiceError::Rejected(format!(
                        "unknown account '{account}': enroll before depositing"
                    )));
                }
                market.deposit(account, *amount);
                Ok(Outcome::Deposited {
                    account: account.clone(),
                    balance: market.balance(account),
                })
            }
            Command::SubmitOffer(spec) => {
                let shard = self.shard_of(&spec.buyer);
                // Global offer ids: allocated by the router (not the
                // shard) so the id — and with it the offer's tie-break
                // RNG stream and its position in the global clearing
                // order — does not depend on the shard count. Allocated
                // on success only, so rejected submissions (which are
                // journaled and replayed as rejections) do not burn ids.
                let mut state = self.state.lock();
                let offer = self
                    .market_at(shard)
                    .submit_wtp_with_id(state.next_offer, spec.to_wtp(), spec.purpose.clone())
                    .map_err(|e| ServiceError::Rejected(format!("{e:?}")))?;
                state.next_offer = offer + 1;
                Ok(Outcome::OfferAccepted { offer, shard })
            }
            Command::SubmitAsk(spec) => {
                let shard = self.shard_of(&spec.seller);
                let market = self.market_at(shard);
                let rel = spec
                    .table
                    .to_relation()
                    .map_err(|e| ServiceError::Rejected(e.to_string()))?;
                let seller = market.seller(&spec.seller);
                let dataset = seller
                    .share(rel)
                    .map_err(|e| ServiceError::Rejected(format!("{e:?}")))?;
                if let Some(reserve) = spec.reserve {
                    seller
                        .set_reserve(dataset, reserve)
                        .map_err(|e| ServiceError::Rejected(format!("{e:?}")))?;
                }
                if let Some(license) = &spec.license {
                    seller
                        .set_license(dataset, license.to_license())
                        .map_err(|e| ServiceError::Rejected(format!("{e:?}")))?;
                }
                Ok(Outcome::AskAccepted {
                    dataset: dataset.0,
                    shard,
                })
            }
            Command::GrantLicense {
                seller,
                dataset,
                license,
            } => {
                let shard = self.shard_of(seller);
                self.market_at(shard)
                    .seller(seller)
                    .set_license(DatasetId(*dataset), license.to_license())
                    .map_err(|e| ServiceError::Rejected(format!("{e:?}")))?;
                Ok(Outcome::LicenseGranted {
                    dataset: *dataset,
                    shard,
                })
            }
            Command::RunRound { rounds } => {
                let mut reports = Vec::with_capacity(*rounds as usize);
                for _ in 0..*rounds {
                    reports.push(self.run_round());
                }
                Ok(Outcome::RoundsRun(reports))
            }
        }
    }

    /// Run one **two-phase cross-shard round**:
    ///
    /// 1. every shard runs expiry + candidate generation in parallel
    ///    under one coordinator-issued round seed and exports its
    ///    [`CandidateSet`];
    /// 2. the [`ExchangeStage`] clears the merged candidate graph once,
    ///    globally;
    /// 3. cleared sales are routed back to each buyer's shard and
    ///    settled **in global offer-id order** (settlement moves money
    ///    on the shared ledger, so ordering is part of the semantics:
    ///    a seller's proceeds from an earlier sale can fund their own
    ///    later purchase, exactly as in a 1-shard market).
    ///
    /// The candidate phase dominates round cost and stays parallel —
    /// shard-parallel in-process, or farmed out to worker processes
    /// when a [`RoundDistributor`] is attached; the exchange and
    /// settlement phases are cheap, ledger-touching, and deterministic.
    pub fn run_round(&self) -> MergedRoundReport {
        let m = crate::metrics::metrics();
        let round_seed = self.draw_round_seed();
        let round = self.rounds_completed() + 1;
        let distributor = self.distributor.lock().clone();
        // Phase 1: candidates — distributed when a distributor is
        // attached and has live workers, shard-parallel locally
        // otherwise. Both paths produce identical contexts: the export
        // carries everything the candidate stage computed, and expiry
        // (a pure function of the local offer book) re-runs on import.
        // dmp-lint: allow(det-wall-clock) -- per-phase latency telemetry; never read into round state
        let phase_started = std::time::Instant::now();
        let remote = distributor
            .as_ref()
            .and_then(|d| d.candidates(round, round_seed, self.shards.len()))
            .filter(|exports| exports.len() == self.shards.len());
        let mut ctxs: Vec<RoundContext> = match &remote {
            Some(exports) => self
                .shards
                .iter()
                .zip(exports)
                .map(|(market, export)| market.begin_round_imported(round_seed, export))
                .collect(),
            None => self
                .shards
                .par_iter()
                .map(|market| market.begin_round_seeded(round_seed))
                .collect(),
        };
        m.round_phase_us(0)
            .record_duration_us(phase_started.elapsed());
        // Phase 2: one global clearing pass over all shards' bids. The
        // bids move out of the contexts by value — settlement only
        // needs the winning mashups, which stay behind.
        // dmp-lint: allow(det-wall-clock) -- per-phase latency telemetry; never read into round state
        let phase_started = std::time::Instant::now();
        let sales = self.clear_round(&mut ctxs);
        m.round_phase_us(1)
            .record_duration_us(phase_started.elapsed());
        let merged = self.finish_round(ctxs, sales);
        // Broadcast the settled round so every worker replica replays
        // it and stays bit-identical to the coordinator.
        if let (Some(d), Some(exports)) = (&distributor, &remote) {
            d.round_complete(round, round_seed, exports);
        }
        merged
    }

    /// Phase 2 of a round: move every shard's bids out of its context
    /// and run one global clearing pass over the merged candidate
    /// graph. Returned sales are sorted by global offer id.
    pub fn clear_round(&self, ctxs: &mut [RoundContext]) -> Vec<Sale> {
        let sets: Vec<CandidateSet> = ctxs
            .iter_mut()
            .map(RoundContext::take_candidate_set)
            .collect();
        self.exchange.clear(sets)
    }

    /// Phases 3–4 of a round: settle the cleared sales against the
    /// shared ledger (conflict-graph parallel planning, globally
    /// ordered commit) and close every shard's round. Shared between
    /// the in-process path ([`ShardRouter::run_round`]) and worker
    /// replicas replaying a coordinator-settled round — both must
    /// execute it bit-identically. `sales` must be sorted by global
    /// offer id (the contract of [`clear`]).
    pub fn finish_round(&self, mut ctxs: Vec<RoundContext>, sales: Vec<Sale>) -> MergedRoundReport {
        let m = crate::metrics::metrics();
        // Phase 3: conflict-graph settlement, routed to the buyer's
        // shard. Planning (fee split, revenue shares, contribution
        // rewards — the Shapley-flavored part) reads no ledger state,
        // so sales whose conflict keys (buyer + dataset owners +
        // datasets) land in different connected components are planned
        // concurrently. The *commit* stays strictly in global offer-id
        // order: escrow/transaction/delivery ids, the audit chain, and
        // hold-success all depend on it (a seller's proceeds from an
        // earlier sale can fund their own later purchase on the shared
        // ledger, exactly as in a 1-shard market).
        // dmp-lint: allow(det-wall-clock) -- per-phase latency telemetry; never read into round state
        let phase_started = std::time::Instant::now();
        let keyed: Vec<(usize, Sale)> = sales
            .into_iter()
            .map(|sale| (self.shard_of(&sale.buyer), sale))
            .collect();
        // Ex post designs defer payment to delivery audits; their
        // settlement path ignores plans, so skip the planning pass.
        let plan_ahead = !matches!(
            self.exchange.design.elicitation,
            ElicitationProtocol::ExPost(_)
        );
        let keys: Vec<Vec<String>> = keyed
            .iter()
            .map(|(home, sale)| {
                // dmp-lint: allow(panic-indexing) -- one context per shard by construction; home comes from shard_of, reduced mod shards.len()
                match ctxs[*home].best_mashups.get(&sale.offer_id) {
                    Some(mashup) => self.market_at(*home).settlement_conflict_keys(sale, mashup),
                    None => Vec::new(),
                }
            })
            .collect();
        let components = connected_components(&keys);
        let per_component: Vec<Vec<(usize, Option<SettlementPlan>)>> = components
            .par_iter()
            .map(|component| {
                component
                    .iter()
                    .map(|&i| {
                        // dmp-lint: allow(panic-indexing) -- component members index the keyed sales they were built from
                        let (home, sale) = &keyed[i];
                        let plan = if plan_ahead {
                            // dmp-lint: allow(panic-indexing) -- one context per shard by construction
                            ctxs[*home]
                                .best_mashups
                                .get(&sale.offer_id)
                                .map(|mashup| self.market_at(*home).plan_settlement(sale, mashup))
                        } else {
                            None
                        };
                        (i, plan)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        // Deterministic merge: back to global offer-id order (keyed
        // order) regardless of which component finished first.
        let mut planned: Vec<(usize, Option<SettlementPlan>)> =
            per_component.into_iter().flatten().collect();
        planned.sort_by_key(|(i, _)| *i);
        m.settlement_components.record(components.len() as u64);
        let component_count = components.len();
        for ((home, sale), (_, plan)) in keyed.into_iter().zip(planned) {
            self.market_at(home)
                // dmp-lint: allow(panic-indexing) -- one context per shard by construction; home comes from shard_of, reduced mod shards.len()
                .settle_sale_planned(&mut ctxs[home], sale, plan.as_ref());
        }
        // Cross-shard accounting over sales that actually *settled*
        // (cleared-but-unfunded sales leave their offers pending and
        // must not be reported as trades): a settled sale is
        // cross-shard when its mashup uses a dataset whose owner
        // hashes to a different shard than the buyer.
        let mut cross_shard = 0usize;
        for (home, ctx) in ctxs.iter().enumerate() {
            for sale in &ctx.completed_sales {
                if let Some(m) = ctx.best_mashups.get(&sale.offer_id) {
                    let crosses = m.datasets.iter().any(|&d| {
                        self.market_at(home)
                            .metadata()
                            .get(d)
                            .map(|e| self.shard_of(&e.owner) != home)
                            .unwrap_or(false)
                    });
                    if crosses {
                        cross_shard += 1;
                    }
                }
            }
        }
        m.round_phase_us(2)
            .record_duration_us(phase_started.elapsed());
        // dmp-lint: allow(det-wall-clock) -- per-phase latency telemetry; never read into round state
        let phase_started = std::time::Instant::now();
        let reports: Vec<RoundReport> = ctxs
            .into_iter()
            .zip(&self.shards)
            .map(|(ctx, market)| market.close_round(ctx))
            .collect();
        let mut merged = MergedRoundReport::merge(reports);
        merged.cross_shard = cross_shard;
        merged.components = component_count;
        m.round_phase_us(3)
            .record_duration_us(phase_started.elapsed());
        m.cross_shard_sales.add(cross_shard as u64);
        m.rounds_total.inc();
        self.rounds
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        merged
    }

    /// Balance lookup (the ledger is shared across shards).
    pub fn balance(&self, account: &str) -> f64 {
        self.market_at(0).balance(account)
    }

    /// Whether any shard knows this participant.
    pub fn participant_exists(&self, name: &str) -> bool {
        self.market_at(self.shard_of(name))
            .participant(name)
            .is_some()
    }

    /// All balances as `(account, balance)`, sorted by account name
    /// (one shared ledger — already deduplicated by construction).
    pub fn all_balances(&self) -> Vec<(String, f64)> {
        self.market_at(0).ledger().balances()
    }

    /// Capture the router's complete recoverable state — the shared
    /// substrate once, every shard's private state, and the router's
    /// own offer-id allocator / round-seed stream / round counter — for
    /// a materialized snapshot.
    pub fn export_state(&self) -> RouterImage {
        let state = self.state.lock();
        RouterImage {
            substrate: self.market_at(0).substrate().export_state(),
            shards: self
                .shards
                .iter()
                .map(DataMarket::export_shard_state)
                .collect(),
            next_offer: state.next_offer,
            round_rng: state.round_rng.state(),
            rounds: self.rounds.load(std::sync::atomic::Ordering::SeqCst),
        }
    }

    /// Restore a previously exported image into this router. The router
    /// must be freshly constructed (append-only structures are replayed
    /// into empty logs) with the same shard count the image was taken
    /// from.
    pub fn restore_state(&self, image: RouterImage) -> Result<(), ServiceError> {
        if image.shards.len() != self.shards.len() {
            return Err(ServiceError::Rejected(format!(
                "snapshot captured {} shards but this router has {}",
                image.shards.len(),
                self.shards.len()
            )));
        }
        self.market_at(0).substrate().restore_state(image.substrate);
        for (market, shard_state) in self.shards.iter().zip(image.shards) {
            market.restore_shard_state(shard_state);
        }
        let mut state = self.state.lock();
        state.next_offer = image.next_offer;
        state.round_rng = StdRng::from_state(image.round_rng);
        drop(state);
        self.rounds
            .store(image.rounds, std::sync::atomic::Ordering::SeqCst);
        Ok(())
    }

    /// FNV-1a digest over the market state: the shared ledger (every
    /// balance and open escrow, in micro-credits), then per shard the
    /// round counter, the full offer book and the participant roster —
    /// and, beyond that visible prefix, everything a materialized
    /// snapshot carries (catalog relations cell-by-cell, lineage, id
    /// allocators, RNG stream positions, transactions, deliveries,
    /// audit events, disputes), rendered in stable integer/bit form.
    /// Hasher-derived values (content hashes, audit-chain hashes) are
    /// deliberately excluded: they may vary across toolchain versions,
    /// and a digest built on them would refuse a perfectly good
    /// snapshot after an upgrade. Two routers with equal digests agree
    /// bit-for-bit on all recoverable state — snapshots store this to
    /// *prove* a decoded state image equivalent before the journal tail
    /// replays on top.
    pub fn state_digest(&self) -> u64 {
        let mut canon = String::new();
        // Substrate state (shared across shards): enumerate once.
        canon.push_str("ledger\n");
        for (account, balance) in self.market_at(0).ledger().balances() {
            canon.push_str(&format!("bal {account} {}\n", micros(balance)));
        }
        for (id, holder, remaining) in self.market_at(0).ledger().escrow_holds() {
            canon.push_str(&format!("esc {id} {holder} {}\n", micros(remaining)));
        }
        for (i, market) in self.shards.iter().enumerate() {
            canon.push_str(&format!("shard {i} round {}\n", market.round()));
            for offer in market.offers() {
                canon.push_str(&format!(
                    "offer {} {} {} {} {:?} {}\n",
                    offer.id,
                    offer.wtp.buyer,
                    offer.purpose,
                    offer.submitted_at,
                    offer.state,
                    micros(offer.wtp.max_price()),
                ));
            }
            for p in market.participants() {
                canon.push_str(&format!(
                    "part {} {} {} {}\n",
                    p.name,
                    p.role,
                    p.excluded_until,
                    micros(p.reputation)
                ));
            }
        }
        // Extended coverage: the full state image in stable form.
        let image = self.export_state();
        digest_substrate(&mut canon, &image.substrate);
        for (i, shard) in image.shards.iter().enumerate() {
            digest_shard(&mut canon, i, shard);
        }
        let [r0, r1, r2, r3] = image.round_rng;
        canon.push_str(&format!(
            "router next_offer {} rng {r0} {r1} {r2} {r3} rounds {}\n",
            image.next_offer, image.rounds
        ));
        fnv1a(canon.as_bytes())
    }
}

/// The router's complete recoverable state, captured by
/// [`ShardRouter::export_state`] and serialized by the snapshot codec.
pub struct RouterImage {
    /// Shared substrate (catalog, lineage, ledger, licensing terms).
    pub substrate: SubstrateImage,
    /// One private-state image per shard, in shard order.
    pub shards: Vec<MarketShardState>,
    /// The router-global offer-id allocator.
    pub next_offer: u64,
    /// The round-seed coordinator stream's xoshiro256++ state words.
    pub round_rng: [u64; 4],
    /// Rounds completed.
    pub rounds: u64,
}

/// Micro-credit rendering for digests (stable integer form; same
/// granularity the ledger stores).
fn micros(x: f64) -> i64 {
    (x * dmp_core::arbiter::ledger::MICROS_PER_CREDIT).round() as i64
}

/// Bit-exact stable rendering of an `f64` for digests: the hex bit
/// pattern, never decimal formatting (which could drift across library
/// versions).
fn stable_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn stable_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('N'),
        Value::Bool(b) => out.push_str(if *b { "B1" } else { "B0" }),
        Value::Int(i) => out.push_str(&format!("I{i}")),
        Value::Float(f) => out.push_str(&format!("F{}", stable_f64(*f))),
        Value::Str(s) => out.push_str(&format!("S{}:{s}", s.len())),
        Value::Timestamp(t) => out.push_str(&format!("T{t}")),
        Value::Multi(vs) => {
            out.push_str("M[");
            for sv in vs {
                out.push_str(&format!("{}=", sv.source.0));
                stable_value(&sv.value, out);
                out.push(';');
            }
            out.push(']');
        }
    }
}

fn stable_relation(rel: &Relation, out: &mut String) {
    out.push_str(&format!(
        "rel {}:{} src {:?} [",
        rel.name().len(),
        rel.name(),
        rel.source().map(|d| d.0)
    ));
    for f in rel.schema().fields() {
        out.push_str(&format!("{}:{:?},", f.name(), f.dtype()));
    }
    out.push(']');
    for row in rel.rows() {
        out.push('(');
        for v in row.values() {
            stable_value(v, out);
            out.push(',');
        }
        out.push('|');
        for a in row.provenance().atoms() {
            out.push_str(&format!("{}:{},", a.dataset.0, a.row));
        }
        out.push(')');
    }
}

fn stable_curve(curve: &PriceCurve, out: &mut String) {
    match curve {
        PriceCurve::Step(steps) => {
            out.push_str("step");
            for (t, p) in steps {
                out.push_str(&format!(" {}:{}", stable_f64(*t), stable_f64(*p)));
            }
        }
        PriceCurve::Linear {
            min_satisfaction,
            max_price,
        } => out.push_str(&format!(
            "linear {} {}",
            stable_f64(*min_satisfaction),
            stable_f64(*max_price)
        )),
        PriceCurve::Constant(p) => out.push_str(&format!("const {}", stable_f64(*p))),
    }
}

fn stable_task(task: &TaskKind, out: &mut String) {
    match task {
        TaskKind::Classification { label } => out.push_str(&format!("cls {label}")),
        TaskKind::Regression { target } => out.push_str(&format!("reg {target}")),
        TaskKind::AggregateCompleteness {
            group_by,
            expected_groups,
        } => out.push_str(&format!("agg {group_by} {expected_groups}")),
        TaskKind::AttributeCoverage => out.push_str("cov"),
    }
}

fn stable_constraints(c: &IntrinsicConstraints, out: &mut String) {
    out.push_str(&format!(
        "age {:?} exp {:?} authors {} prov {} miss {}",
        c.max_age,
        c.expires_at,
        c.authors.join(","),
        c.require_provenance,
        c.max_missing_ratio.map(stable_f64).unwrap_or_default()
    ));
}

fn stable_wtp(wtp: &WtpFunction, out: &mut String) {
    out.push_str(&format!(
        "{} attrs {} kw {} min_rows {} task ",
        wtp.buyer,
        wtp.attributes.join(","),
        wtp.keywords.join(","),
        wtp.min_rows
    ));
    stable_task(&wtp.task, out);
    out.push_str(" curve ");
    stable_curve(&wtp.curve, out);
    out.push_str(" con ");
    stable_constraints(&wtp.constraints, out);
    out.push_str(" owned ");
    match &wtp.owned_data {
        Some(rel) => stable_relation(rel, out),
        None => out.push_str("none"),
    }
}

fn stable_audit_event(ev: &AuditEvent, out: &mut String) {
    match ev {
        AuditEvent::DatasetRegistered { dataset, seller } => {
            out.push_str(&format!("reg {} {seller}", dataset.0));
        }
        AuditEvent::WtpSubmitted { offer, buyer } => {
            out.push_str(&format!("wtp {offer} {buyer}"));
        }
        AuditEvent::MashupBuilt { offer, datasets } => {
            out.push_str(&format!("mash {offer}"));
            for d in datasets {
                out.push_str(&format!(" {}", d.0));
            }
        }
        AuditEvent::TransactionSettled { tx, buyer, price } => {
            out.push_str(&format!("settle {tx} {buyer} {}", stable_f64(*price)));
        }
        AuditEvent::PrivacyRelease { dataset, epsilon } => {
            out.push_str(&format!("priv {} {}", dataset.0, stable_f64(*epsilon)));
        }
        AuditEvent::ExPostAudit {
            delivery,
            underreported,
        } => {
            out.push_str(&format!("expost {delivery} {underreported}"));
        }
        AuditEvent::Dispute { dispute, note } => {
            out.push_str(&format!("disp {dispute} {note}"));
        }
    }
}

fn stable_license(l: &dmp_core::license::License, out: &mut String) {
    match l {
        dmp_core::license::License::Standard => out.push_str("std"),
        dmp_core::license::License::Exclusive {
            tax_rate,
            hold_rounds,
        } => out.push_str(&format!("excl {} {hold_rounds}", stable_f64(*tax_rate))),
        dmp_core::license::License::OwnershipTransfer => out.push_str("own"),
        dmp_core::license::License::NonTransferable => out.push_str("nt"),
    }
}

fn digest_substrate(canon: &mut String, s: &SubstrateImage) {
    canon.push_str("substrate\n");
    for e in &s.metadata.entries {
        canon.push_str(&format!(
            "meta {} v{} reg {} snap {} name {} owner {} tags {} ",
            e.id.0,
            e.version,
            e.registered_at,
            e.snapshot_at,
            e.name,
            e.owner,
            e.tags.join(",")
        ));
        stable_relation(&e.relation, canon);
        canon.push('\n');
    }
    canon.push_str(&format!(
        "meta_counters {} {}\n",
        s.metadata.next_id, s.metadata.clock
    ));
    for (d, evs) in &s.lineage {
        for (seq, ev) in evs {
            canon.push_str(&format!("lin {} {seq} ", d.0));
            match ev {
                dmp_discovery::LineageEvent::UsedInMashup {
                    mashup,
                    rows_contributed,
                } => canon.push_str(&format!("used {mashup} {rows_contributed}")),
                dmp_discovery::LineageEvent::SoldInMashup { mashup, revenue } => {
                    canon.push_str(&format!("sold {mashup} {}", stable_f64(*revenue)));
                }
                dmp_discovery::LineageEvent::Updated { version } => {
                    canon.push_str(&format!("upd {version}"));
                }
                dmp_discovery::LineageEvent::PrivateRelease { epsilon } => {
                    canon.push_str(&format!("priv {}", stable_f64(*epsilon)));
                }
            }
            canon.push('\n');
        }
    }
    canon.push_str(&format!("lin_seq {}\n", s.lineage_seq));
    // Open escrows and balances are already in the digest's visible
    // prefix; add what the prefix omits — closed escrows (their ids
    // stay occupied) and the allocator.
    for e in &s.ledger.escrows {
        if !e.held {
            canon.push_str(&format!("esc_closed {} {}\n", e.id, e.from));
        }
    }
    canon.push_str(&format!("ledger_next {}\n", s.ledger.next_escrow));
    for (d, p) in &s.reserves {
        canon.push_str(&format!("reserve {} {}\n", d.0, stable_f64(*p)));
    }
    for (d, l) in &s.licenses {
        canon.push_str(&format!("license {} ", d.0));
        stable_license(l, canon);
        canon.push('\n');
    }
    for (d, p) in &s.ci_policies {
        canon.push_str(&format!(
            "ci {} ctx {} roles {} forb {}\n",
            d.0,
            p.context,
            p.allowed_roles.join(","),
            p.forbidden_purposes.join(",")
        ));
    }
    for (d, holder, until) in &s.exclusive_holds {
        canon.push_str(&format!("hold {} {holder} {until}\n", d.0));
    }
}

fn digest_shard(canon: &mut String, i: usize, s: &MarketShardState) {
    let [r0, r1, r2, r3] = s.rng;
    canon.push_str(&format!(
        "xshard {i} clock {} next {} {} {} rng {r0} {r1} {r2} {r3}\n",
        s.clock, s.next_offer, s.next_tx, s.next_delivery
    ));
    for o in &s.offers {
        canon.push_str(&format!("xoffer {} wtp ", o.id));
        stable_wtp(&o.wtp, canon);
        canon.push('\n');
    }
    for t in &s.transactions {
        canon.push_str(&format!(
            "tx {} {} {} price {} fee {} sat {} round {} ds",
            t.id,
            t.offer_id,
            t.buyer,
            stable_f64(t.price),
            stable_f64(t.fee),
            stable_f64(t.satisfaction),
            t.round
        ));
        for d in &t.datasets {
            canon.push_str(&format!(" {}", d.0));
        }
        canon.push_str(" shares");
        for sh in &t.shares {
            canon.push_str(&format!(" {}:{}", sh.dataset.0, stable_f64(sh.amount)));
        }
        canon.push('\n');
    }
    for d in &s.deliveries {
        canon.push_str(&format!(
            "del {} {} {} sat {} esc {} ds",
            d.id,
            d.offer_id,
            d.buyer,
            stable_f64(d.satisfaction),
            d.escrow
        ));
        for ds in &d.datasets {
            canon.push_str(&format!(" {}", ds.0));
        }
        canon.push(' ');
        stable_relation(&d.relation, canon);
        match &d.settlement {
            Some(st) => canon.push_str(&format!(
                " settle {} {} {}\n",
                stable_f64(st.paid),
                stable_f64(st.penalty),
                st.audited
            )),
            None => canon.push_str(" settle none\n"),
        }
    }
    for p in &s.purchases {
        canon.push_str(&format!("buy {}", p.buyer));
        for d in &p.datasets {
            canon.push_str(&format!(" {}", d.0));
        }
        canon.push('\n');
    }
    for m in &s.last_missing {
        canon.push_str(&format!("miss {}\n", m.join(",")));
    }
    for n in &s.last_negotiations {
        canon.push_str(&format!(
            "neg {} {} missing {} cand {}\n",
            n.offer_id,
            n.buyer,
            n.missing.join(","),
            n.candidate_sellers.join(",")
        ));
    }
    for ev in &s.audit_events {
        canon.push_str("audit ");
        stable_audit_event(ev, canon);
        canon.push('\n');
    }
    for d in &s.disputes {
        canon.push_str(&format!(
            "disp {} {} {} reason {} ",
            d.id, d.tx, d.complainant, d.reason
        ));
        match &d.state {
            DisputeState::Open => canon.push_str("open\n"),
            DisputeState::Resolved { refund } => {
                canon.push_str(&format!("resolved {}\n", stable_f64(*refund)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_mechanism::design::MarketDesign;

    fn router(shards: usize) -> ShardRouter {
        let cfg = MarketConfig::external(11).with_design(MarketDesign::posted_price_baseline(10.0));
        ShardRouter::new(&cfg, shards)
    }

    #[test]
    fn routing_is_stable_and_total() {
        let r = router(4);
        for name in ["alice", "bob", "carol", "dave", "eve"] {
            let s = r.shard_of(name);
            assert!(s < 4);
            assert_eq!(s, r.shard_of(name), "routing must be deterministic");
        }
    }

    #[test]
    fn enroll_and_deposit_land_on_one_shard() {
        let r = router(4);
        r.apply(&Command::Enroll {
            name: "alice".into(),
            role: "buyer".into(),
        })
        .unwrap();
        let out = r
            .apply(&Command::Deposit {
                account: "alice".into(),
                amount: 50.0,
            })
            .unwrap();
        match out {
            Outcome::Deposited { balance, .. } => assert!(balance >= 50.0),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(r.balance("alice") >= 50.0);
        let populated: usize = r
            .shards()
            .iter()
            .filter(|m| m.participant("alice").is_some())
            .count();
        assert_eq!(populated, 1, "participant lives on exactly one shard");
    }

    #[test]
    fn digest_tracks_state_changes() {
        let r = router(2);
        let d0 = r.state_digest();
        r.apply(&Command::Enroll {
            name: "alice".into(),
            role: "buyer".into(),
        })
        .unwrap();
        let d1 = r.state_digest();
        assert_ne!(d0, d1, "digest must change when state changes");
        // An identical router replaying identical commands agrees.
        let r2 = router(2);
        r2.apply(&Command::Enroll {
            name: "alice".into(),
            role: "buyer".into(),
        })
        .unwrap();
        assert_eq!(r2.state_digest(), d1);
    }

    #[test]
    fn rounds_merge_across_shards() {
        let r = router(3);
        let merged = r.run_round();
        assert_eq!(merged.per_shard.len(), 3);
        assert_eq!(merged.considered, 0);
        assert_eq!(merged.cross_shard, 0);
    }

    #[test]
    fn shards_share_one_substrate() {
        let r = router(4);
        // A deposit routed through any shard is visible on every shard:
        // the ledger is shared, not partitioned.
        r.apply(&Command::Enroll {
            name: "alice".into(),
            role: "buyer".into(),
        })
        .unwrap();
        r.apply(&Command::Deposit {
            account: "alice".into(),
            amount: 50.0,
        })
        .unwrap();
        for market in r.shards() {
            assert_eq!(market.balance("alice"), 50.0);
        }
        // One entry in the merged view, not one per shard.
        let alices = r
            .all_balances()
            .iter()
            .filter(|(name, _)| name == "alice")
            .count();
        assert_eq!(alices, 1);
    }

    #[test]
    fn exchange_merge_orders_bids_by_global_offer_id() {
        let bid = |offer_id: u64| RoundBid {
            offer_id,
            buyer: format!("b{offer_id}"),
            bid: 5.0,
            satisfaction: 1.0,
            datasets: vec![DatasetId(0)],
            reserve_floor: 0.0,
            license_multiplier: 1.0,
        };
        let sets = vec![
            CandidateSet {
                round: 1,
                bids: vec![bid(3), bid(7)],
            },
            CandidateSet {
                round: 1,
                bids: vec![bid(1), bid(5)],
            },
        ];
        let merged = ExchangeStage::merge(sets);
        let ids: Vec<u64> = merged.iter().map(|b| b.offer_id).collect();
        assert_eq!(ids, [1, 3, 5, 7], "merged order = 1-shard offer-book order");
    }

    #[test]
    fn distributed_candidate_import_matches_local_compute() {
        // A round whose candidate phase is exported on one router and
        // imported on an identical replica must leave both routers with
        // equal digests — the invariant the coordinator/worker split
        // rests on.
        let seed_commands = |r: &ShardRouter| {
            r.apply(&Command::Enroll {
                name: "alice".into(),
                role: "buyer".into(),
            })
            .unwrap();
            r.apply(&Command::Deposit {
                account: "alice".into(),
                amount: 50.0,
            })
            .unwrap();
        };
        let local = router(2);
        let replica = router(2);
        seed_commands(&local);
        seed_commands(&replica);
        // Local path on `local`.
        let report_local = local.run_round();
        // Exported/imported path on `replica`.
        let seed = replica.draw_round_seed();
        let mut exports = Vec::new();
        let mut pending = Vec::new();
        for market in replica.shards() {
            let (ctx, export) = market.begin_round_exported(seed);
            pending.push(ctx);
            exports.push(export);
        }
        // A third replica imports what the second exported.
        let importer = router(2);
        seed_commands(&importer);
        let iseed = importer.draw_round_seed();
        assert_eq!(iseed, seed, "replicas draw the same round seed");
        let mut ictxs: Vec<RoundContext> = importer
            .shards()
            .iter()
            .zip(&exports)
            .map(|(market, export)| market.begin_round_imported(iseed, export))
            .collect();
        let isales = importer.clear_round(&mut ictxs);
        let report_import = importer.finish_round(ictxs, isales);
        // Finish the exporting replica too so all three digests align.
        let psales = replica.clear_round(&mut pending);
        replica.finish_round(pending, psales);
        assert_eq!(report_local.round, report_import.round);
        assert_eq!(local.state_digest(), importer.state_digest());
        assert_eq!(local.state_digest(), replica.state_digest());
    }

    #[test]
    fn predicted_seed_matches_drawn_seed() {
        let r = router(2);
        let predicted = r.predict_round_seed();
        assert_eq!(predicted, r.predict_round_seed(), "prediction is pure");
        assert_eq!(predicted, r.draw_round_seed(), "prediction matches draw");
        assert_ne!(
            predicted,
            r.predict_round_seed(),
            "draw advances the stream"
        );
    }

    #[test]
    fn deposit_to_unknown_account_rejected() {
        let r = router(2);
        assert!(matches!(
            r.apply(&Command::Deposit {
                account: "ghost".into(),
                amount: 5.0
            }),
            Err(ServiceError::Rejected(_))
        ));
        // The arbiter account is implicit — no enrollment required.
        assert!(r
            .apply(&Command::Deposit {
                account: dmp_core::market::ARBITER_ACCOUNT.into(),
                amount: 5.0
            })
            .is_ok());
    }

    #[test]
    fn negative_deposit_rejected() {
        let r = router(2);
        assert!(matches!(
            r.apply(&Command::Deposit {
                account: "x".into(),
                amount: -1.0
            }),
            Err(ServiceError::Rejected(_))
        ));
    }
}
