//! Horizontal partitioning: participants hash onto M independent
//! [`DataMarket`] shards, and rounds run across shards **in parallel**
//! (rayon), with per-shard [`RoundReport`]s merged into one
//! [`MergedRoundReport`].
//!
//! Routing is by stable FNV-1a hash of the participant name, so a
//! command stream replays onto the same shards in any process, on any
//! run — a requirement for journal-replay determinism. Each shard gets
//! a distinct, deterministic RNG seed (`base_seed + shard_index`).
//! Buyers match datasets within their own shard; cross-shard trades
//! are a ROADMAP follow-on.

use dmp_core::market::{DataMarket, MarketConfig, RoundReport};
use rayon::prelude::*;

use dmp_relation::DatasetId;

use crate::command::Command;
use crate::error::ServiceError;
use crate::wire::Json;

/// FNV-1a 64-bit hash (stable across processes and platforms; the
/// routing function must never change under replay).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What applying one [`Command`] produced (the gateway serializes this
/// into the HTTP response body).
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Participant enrolled (idempotent).
    Enrolled {
        /// Principal name.
        name: String,
        /// Owning shard.
        shard: usize,
    },
    /// Funds minted.
    Deposited {
        /// Account name.
        account: String,
        /// Balance after the deposit.
        balance: f64,
    },
    /// Offer accepted into a shard's offer book.
    OfferAccepted {
        /// Shard-local offer id.
        offer: u64,
        /// Owning shard.
        shard: usize,
    },
    /// Dataset registered (and reserve/license applied when given).
    AskAccepted {
        /// Shard-local dataset id.
        dataset: u64,
        /// Owning shard.
        shard: usize,
    },
    /// License attached.
    LicenseGranted {
        /// Dataset id.
        dataset: u64,
        /// Owning shard.
        shard: usize,
    },
    /// Rounds executed across all shards.
    RoundsRun(Vec<MergedRoundReport>),
}

impl Outcome {
    /// JSON form for gateway responses.
    pub fn to_json(&self) -> Json {
        match self {
            Outcome::Enrolled { name, shard } => Json::obj([
                ("enrolled", Json::str(name.clone())),
                ("shard", Json::Num(*shard as f64)),
            ]),
            Outcome::Deposited { account, balance } => Json::obj([
                ("account", Json::str(account.clone())),
                ("balance", Json::Num(*balance)),
            ]),
            Outcome::OfferAccepted { offer, shard } => Json::obj([
                ("offer", Json::Num(*offer as f64)),
                ("shard", Json::Num(*shard as f64)),
            ]),
            Outcome::AskAccepted { dataset, shard } => Json::obj([
                ("dataset", Json::Num(*dataset as f64)),
                ("shard", Json::Num(*shard as f64)),
            ]),
            Outcome::LicenseGranted { dataset, shard } => Json::obj([
                ("licensed", Json::Num(*dataset as f64)),
                ("shard", Json::Num(*shard as f64)),
            ]),
            Outcome::RoundsRun(reports) => Json::obj([(
                "rounds",
                Json::Arr(reports.iter().map(MergedRoundReport::to_json).collect()),
            )]),
        }
    }
}

/// Per-shard round reports merged into platform-level totals.
#[derive(Debug, Clone)]
pub struct MergedRoundReport {
    /// Round number (uniform across shards).
    pub round: u64,
    /// Offers considered, summed over shards.
    pub considered: usize,
    /// Sales cleared, summed over shards.
    pub sales: usize,
    /// Revenue collected (ex ante), summed.
    pub revenue: f64,
    /// Arbiter fees collected, summed.
    pub fees: f64,
    /// Offers expired, summed.
    pub expired: usize,
    /// Ex post deliveries created, summed.
    pub deliveries: usize,
    /// The raw per-shard reports (shard index = position).
    pub per_shard: Vec<RoundReport>,
}

impl MergedRoundReport {
    /// Merge one report per shard (position = shard index).
    pub fn merge(per_shard: Vec<RoundReport>) -> Self {
        MergedRoundReport {
            round: per_shard.first().map(|r| r.round).unwrap_or(0),
            considered: per_shard.iter().map(|r| r.considered).sum(),
            sales: per_shard.iter().map(|r| r.sales.len()).sum(),
            revenue: per_shard.iter().map(|r| r.revenue).sum(),
            fees: per_shard.iter().map(|r| r.fees).sum(),
            expired: per_shard.iter().map(|r| r.expired).sum(),
            deliveries: per_shard.iter().map(|r| r.deliveries.len()).sum(),
            per_shard,
        }
    }

    /// JSON form for gateway responses.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("round", Json::Num(self.round as f64)),
            ("considered", Json::Num(self.considered as f64)),
            ("sales", Json::Num(self.sales as f64)),
            ("revenue", Json::Num(self.revenue)),
            ("fees", Json::Num(self.fees)),
            ("expired", Json::Num(self.expired as f64)),
            ("deliveries", Json::Num(self.deliveries as f64)),
        ])
    }
}

/// M independent market shards behind one routing function.
pub struct ShardRouter {
    shards: Vec<DataMarket>,
}

impl ShardRouter {
    /// Deploy `shards` markets from one base config; shard `i` seeds its
    /// RNG with `base.seed + i` so shards draw independent, reproducible
    /// streams.
    pub fn new(base: &MarketConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        let markets = (0..shards)
            .map(|i| {
                let mut cfg = base.clone();
                cfg.seed = base.seed.wrapping_add(i as u64);
                DataMarket::new(cfg)
            })
            .collect();
        ShardRouter { shards: markets }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning a participant name.
    pub fn shard_of(&self, name: &str) -> usize {
        (fnv1a(name.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Direct shard access (diagnostics, tests, digests).
    pub fn shard(&self, i: usize) -> &DataMarket {
        &self.shards[i]
    }

    /// All shards.
    pub fn shards(&self) -> &[DataMarket] {
        &self.shards
    }

    /// Apply one command, routing by the participant it names. Errors
    /// from the market (unknown participant, refused registration, ...)
    /// surface as [`ServiceError::Rejected`].
    pub fn apply(&self, cmd: &Command) -> Result<Outcome, ServiceError> {
        match cmd {
            Command::Enroll { name, role } => {
                let shard = self.shard_of(name);
                self.shards[shard].enroll(name.clone(), role.clone());
                Ok(Outcome::Enrolled {
                    name: name.clone(),
                    shard,
                })
            }
            Command::Deposit { account, amount } => {
                if *amount < 0.0 || !amount.is_finite() {
                    return Err(ServiceError::Rejected(
                        "deposit amount must be a non-negative finite number".into(),
                    ));
                }
                if *amount > dmp_core::arbiter::ledger::MAX_AMOUNT {
                    return Err(ServiceError::Rejected(format!(
                        "deposit amount exceeds the ledger maximum of {} credits",
                        dmp_core::arbiter::ledger::MAX_AMOUNT
                    )));
                }
                let shard = self.shard_of(account);
                let market = &self.shards[shard];
                // Only enrolled principals (and the arbiter) hold
                // accounts: minting into an unknown name would create a
                // balance `GET /ledger/:name` then denies exists.
                if market.participant(account).is_none()
                    && account != dmp_core::market::ARBITER_ACCOUNT
                {
                    return Err(ServiceError::Rejected(format!(
                        "unknown account '{account}': enroll before depositing"
                    )));
                }
                market.deposit(account, *amount);
                Ok(Outcome::Deposited {
                    account: account.clone(),
                    balance: market.balance(account),
                })
            }
            Command::SubmitOffer(spec) => {
                let shard = self.shard_of(&spec.buyer);
                let offer = self.shards[shard]
                    .submit_wtp_for_purpose(spec.to_wtp(), spec.purpose.clone())
                    .map_err(|e| ServiceError::Rejected(format!("{e:?}")))?;
                Ok(Outcome::OfferAccepted { offer, shard })
            }
            Command::SubmitAsk(spec) => {
                let shard = self.shard_of(&spec.seller);
                let market = &self.shards[shard];
                let rel = spec
                    .table
                    .to_relation()
                    .map_err(|e| ServiceError::Rejected(e.to_string()))?;
                let seller = market.seller(&spec.seller);
                let dataset = seller
                    .share(rel)
                    .map_err(|e| ServiceError::Rejected(format!("{e:?}")))?;
                if let Some(reserve) = spec.reserve {
                    seller
                        .set_reserve(dataset, reserve)
                        .map_err(|e| ServiceError::Rejected(format!("{e:?}")))?;
                }
                if let Some(license) = &spec.license {
                    seller
                        .set_license(dataset, license.to_license())
                        .map_err(|e| ServiceError::Rejected(format!("{e:?}")))?;
                }
                Ok(Outcome::AskAccepted {
                    dataset: dataset.0,
                    shard,
                })
            }
            Command::GrantLicense {
                seller,
                dataset,
                license,
            } => {
                let shard = self.shard_of(seller);
                self.shards[shard]
                    .seller(seller)
                    .set_license(DatasetId(*dataset), license.to_license())
                    .map_err(|e| ServiceError::Rejected(format!("{e:?}")))?;
                Ok(Outcome::LicenseGranted {
                    dataset: *dataset,
                    shard,
                })
            }
            Command::RunRound { rounds } => {
                let mut reports = Vec::with_capacity(*rounds as usize);
                for _ in 0..*rounds {
                    reports.push(self.run_round());
                }
                Ok(Outcome::RoundsRun(reports))
            }
        }
    }

    /// Run one round on every shard in parallel and merge the reports.
    /// Shards are independent markets, so parallel execution is
    /// bit-identical to sequential (each shard's pipeline already is).
    pub fn run_round(&self) -> MergedRoundReport {
        let reports: Vec<RoundReport> = self
            .shards
            .par_iter()
            .map(|market| market.run_round())
            .collect();
        MergedRoundReport::merge(reports)
    }

    /// Balance lookup, routed to the owning shard.
    pub fn balance(&self, account: &str) -> f64 {
        self.shards[self.shard_of(account)].balance(account)
    }

    /// Whether any shard knows this participant.
    pub fn participant_exists(&self, name: &str) -> bool {
        self.shards[self.shard_of(name)].participant(name).is_some()
    }

    /// All balances across shards as `(account, balance)`, sorted by
    /// account name.
    pub fn all_balances(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .shards
            .iter()
            .flat_map(|m| m.ledger().balances())
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// FNV-1a digest over the externally-visible market state: per
    /// shard, the round counter, every ledger balance and open escrow
    /// (in micro-credits), and the full offer book. Two routers with
    /// equal digests agree bit-for-bit on balances and allocations —
    /// snapshots store this to verify recovery.
    pub fn state_digest(&self) -> u64 {
        let mut canon = String::new();
        for (i, market) in self.shards.iter().enumerate() {
            canon.push_str(&format!("shard {i} round {}\n", market.round()));
            for (account, balance) in market.ledger().balances() {
                canon.push_str(&format!("bal {account} {}\n", micros(balance)));
            }
            for (id, holder, remaining) in market.ledger().escrow_holds() {
                canon.push_str(&format!("esc {id} {holder} {}\n", micros(remaining)));
            }
            for offer in market.offers() {
                canon.push_str(&format!(
                    "offer {} {} {} {} {:?} {}\n",
                    offer.id,
                    offer.wtp.buyer,
                    offer.purpose,
                    offer.submitted_at,
                    offer.state,
                    micros(offer.wtp.max_price()),
                ));
            }
            for p in market.participants() {
                canon.push_str(&format!(
                    "part {} {} {} {}\n",
                    p.name,
                    p.role,
                    p.excluded_until,
                    micros(p.reputation)
                ));
            }
        }
        fnv1a(canon.as_bytes())
    }
}

/// Micro-credit rendering for digests (stable integer form; same
/// granularity the ledger stores).
fn micros(x: f64) -> i64 {
    (x * dmp_core::arbiter::ledger::MICROS_PER_CREDIT).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_mechanism::design::MarketDesign;

    fn router(shards: usize) -> ShardRouter {
        let cfg = MarketConfig::external(11).with_design(MarketDesign::posted_price_baseline(10.0));
        ShardRouter::new(&cfg, shards)
    }

    #[test]
    fn routing_is_stable_and_total() {
        let r = router(4);
        for name in ["alice", "bob", "carol", "dave", "eve"] {
            let s = r.shard_of(name);
            assert!(s < 4);
            assert_eq!(s, r.shard_of(name), "routing must be deterministic");
        }
    }

    #[test]
    fn enroll_and_deposit_land_on_one_shard() {
        let r = router(4);
        r.apply(&Command::Enroll {
            name: "alice".into(),
            role: "buyer".into(),
        })
        .unwrap();
        let out = r
            .apply(&Command::Deposit {
                account: "alice".into(),
                amount: 50.0,
            })
            .unwrap();
        match out {
            Outcome::Deposited { balance, .. } => assert!(balance >= 50.0),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(r.balance("alice") >= 50.0);
        let populated: usize = r
            .shards()
            .iter()
            .filter(|m| m.participant("alice").is_some())
            .count();
        assert_eq!(populated, 1, "participant lives on exactly one shard");
    }

    #[test]
    fn digest_tracks_state_changes() {
        let r = router(2);
        let d0 = r.state_digest();
        r.apply(&Command::Enroll {
            name: "alice".into(),
            role: "buyer".into(),
        })
        .unwrap();
        let d1 = r.state_digest();
        assert_ne!(d0, d1, "digest must change when state changes");
        // An identical router replaying identical commands agrees.
        let r2 = router(2);
        r2.apply(&Command::Enroll {
            name: "alice".into(),
            role: "buyer".into(),
        })
        .unwrap();
        assert_eq!(r2.state_digest(), d1);
    }

    #[test]
    fn rounds_merge_across_shards() {
        let r = router(3);
        let merged = r.run_round();
        assert_eq!(merged.per_shard.len(), 3);
        assert_eq!(merged.considered, 0);
    }

    #[test]
    fn deposit_to_unknown_account_rejected() {
        let r = router(2);
        assert!(matches!(
            r.apply(&Command::Deposit {
                account: "ghost".into(),
                amount: 5.0
            }),
            Err(ServiceError::Rejected(_))
        ));
        // The arbiter account is implicit — no enrollment required.
        assert!(r
            .apply(&Command::Deposit {
                account: dmp_core::market::ARBITER_ACCOUNT.into(),
                amount: 5.0
            })
            .is_ok());
    }

    #[test]
    fn negative_deposit_rejected() {
        let r = router(2);
        assert!(matches!(
            r.apply(&Command::Deposit {
                account: "x".into(),
                amount: -1.0
            }),
            Err(ServiceError::Rejected(_))
        ));
    }
}
