//! The [`ServiceNode`]: journal + snapshots + shard router behind one
//! linearized `apply` path.
//!
//! Write path (WAL ordering):
//!
//! ```text
//! request → Command → journal.append (fsync) → router.apply → Outcome
//! ```
//!
//! A command is durable before it is applied, so the externally-visible
//! state is always reconstructible. Recovery runs `restore + tail
//! replay`: load the newest intact snapshot (a *materialized state
//! image*, format v2), restore it into a fresh router, verify the state
//! digest proves the decoded state is equivalent, then replay only the
//! journal tail (`seq >` snapshot) under a strict sequence-continuity
//! check. A digest mismatch or torn snapshot falls back to the previous
//! snapshot, and finally to replaying the whole journal — the journal
//! prefix is only ever dropped *after* a snapshot covering it has been
//! read back from disk and digest-verified (`keep_snapshots > 0`).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dmp_core::market::MarketConfig;
use dmp_telemetry::log;
use parking_lot::Mutex;

use crate::command::Command;
use crate::error::ServiceError;
use crate::journal::Journal;
use crate::metrics::metrics;
use crate::shard::{Outcome, ShardRouter};
use crate::snapshot::{self, Snapshot};
use crate::state;

/// Node deployment configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Durability directory (journal + snapshots).
    pub dir: PathBuf,
    /// Base market configuration (each shard derives its seed from it).
    pub market: MarketConfig,
    /// Shard count (participants hash across these).
    pub shards: usize,
    /// Write a snapshot every N applied commands (0 = only on demand).
    pub snapshot_every: u64,
    /// `fdatasync` the journal on every append.
    pub fsync: bool,
    /// Snapshot retention / journal compaction knob. 0 (the default)
    /// keeps every snapshot and never truncates the journal. N ≥ 1
    /// keeps the newest N snapshots and, after each checkpoint is
    /// *verified durable* (read back from disk, decoded, restored and
    /// digest-checked), prunes older snapshots and truncates the
    /// journal prefix the oldest retained snapshot covers.
    pub keep_snapshots: usize,
}

impl ServiceConfig {
    /// Defaults: 4 shards, snapshot every 256 commands, fsync on,
    /// unbounded retention (no compaction).
    pub fn new(dir: impl Into<PathBuf>, market: MarketConfig) -> Self {
        ServiceConfig {
            dir: dir.into(),
            market,
            shards: 4,
            snapshot_every: 256,
            fsync: true,
            keep_snapshots: 0,
        }
    }

    /// Override the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Override the snapshot cadence.
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Toggle per-append fsync.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// Set the snapshot retention knob (0 = keep all, never compact).
    pub fn with_keep_snapshots(mut self, keep: usize) -> Self {
        self.keep_snapshots = keep;
        self
    }
}

struct NodeInner {
    journal: Journal,
}

/// The replay-relevant identity of a deployment: every knob that feeds
/// shard hashing or an RNG stream. Two processes agree on this string
/// iff a command stream applied to both produces bit-identical state —
/// the distributed layer sends it with every internal RPC so a worker
/// configured differently refuses work instead of silently diverging.
pub fn config_fingerprint(shards: usize, market: &MarketConfig) -> String {
    // v3: materialized state snapshots (format v2) + journal
    // compaction. A v2 directory may hold command-prefix snapshots
    // and (conversely) a compacted v3 journal is not replayable
    // from genesis, so the version is part of the fingerprint and
    // older directories are refused rather than silently misread.
    format!(
        "v3 shards={} seed={} kind={:?} max_candidates={} contribution_reward={}",
        shards, market.seed, market.kind, market.max_candidates, market.contribution_reward,
    )
}

/// Observer of the node's applied command stream, invoked inside the
/// apply critical section (journal append + router mutation) so
/// followers see commands in exactly the journal's total order. The
/// coordinator uses this to forward every journaled mutation to its
/// worker replicas; [`Command::RunRound`] is *also* delivered (the
/// follower decides what to do — the [`WorkerPool`] skips it because
/// rounds reach workers through the candidates/settle RPC pair that
/// runs inside `router.apply` itself).
///
/// [`WorkerPool`]: crate::coordinator::WorkerPool
pub trait CommandFollower: Send + Sync {
    /// Called after `cmd` was journaled at `seq` and applied.
    fn on_applied(&self, seq: u64, cmd: &Command);
}

/// A durable, sharded market node.
pub struct ServiceNode {
    cfg: ServiceConfig,
    router: ShardRouter,
    inner: Mutex<NodeInner>,
    applied: AtomicU64,
    /// When recovery finished (drives `/health` uptime).
    started: Instant,
    /// Rendered `/health` body, keyed on the atomics it reports. The
    /// reactor serves `/health` inline per request; rebuilding ~100
    /// bytes of JSON (and formatting floats) every time is measurable
    /// at gateway rps, so the body is re-rendered only when a key
    /// component changes. This mutex is private to the health path and
    /// uncontended — it never orders after the apply/WAL lock.
    health_cache: Mutex<(u64, u64, u64, String)>,
    /// Applied-command observer (the coordinator's forwarding hook).
    /// Invoked under the apply lock so followers observe journal order;
    /// installed only *after* recovery, so replay never forwards.
    follower: Mutex<Option<Arc<dyn CommandFollower>>>,
}

impl ServiceNode {
    /// The replay-relevant identity of a node deployment. Reopening a
    /// directory with a different fingerprint would silently hash
    /// participants onto different shards and draw different RNG
    /// streams, so recovery would "succeed" with the wrong state —
    /// [`ServiceNode::open`] persists this and refuses a mismatch.
    fn config_fingerprint(cfg: &ServiceConfig) -> String {
        config_fingerprint(cfg.shards, &cfg.market)
    }

    /// This node's config fingerprint (see [`config_fingerprint`]).
    pub fn fingerprint(&self) -> String {
        Self::config_fingerprint(&self.cfg)
    }

    /// Persist the config fingerprint atomically (tmp, fsync, rename,
    /// directory fsync). A bare `fs::write` could be torn by a crash
    /// into an empty or partial `node.meta`, which a later open would
    /// read as a *mismatch* and refuse a perfectly good directory.
    fn write_meta(dir: &Path, meta_path: &Path, fingerprint: &str) -> std::io::Result<()> {
        let tmp = meta_path.with_extension("meta.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, fingerprint.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, meta_path)?;
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all()?;
        }
        Ok(())
    }

    /// Open a node, running crash recovery against `cfg.dir`.
    pub fn open(cfg: ServiceConfig) -> Result<ServiceNode, ServiceError> {
        std::fs::create_dir_all(&cfg.dir)?;

        // Guard the durability contract: journal replay only reproduces
        // the pre-crash state under the config that wrote it. Only a
        // genuinely *absent* meta file means "fresh directory" — any
        // other read error (permissions, I/O) must propagate, not
        // silently overwrite the existing fingerprint.
        let fingerprint = Self::config_fingerprint(&cfg);
        let meta_path = cfg.dir.join("node.meta");
        match std::fs::read_to_string(&meta_path) {
            Ok(existing) if existing.trim() != fingerprint => {
                return Err(ServiceError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "service config does not match the journal in {}: \
                         on disk '{}', requested '{}'",
                        cfg.dir.display(),
                        existing.trim(),
                        fingerprint
                    ),
                )));
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Self::write_meta(&cfg.dir, &meta_path, &fingerprint)?;
            }
            Err(e) => return Err(ServiceError::Io(e)),
        }

        // Sweep the residue a crash mid-checkpoint can leave behind:
        // stale snapshot `.tmp` files and a half-written journal
        // `.compact` (its rename never happened, so the live journal is
        // intact and the partial copy is garbage).
        let swept = snapshot::sweep_tmp(&cfg.dir)?;
        if swept > 0 {
            log!(Info, "swept {swept} stale snapshot tmp file(s)");
        }
        let stale_compact = cfg.dir.join("journal.compact");
        if stale_compact.exists() {
            std::fs::remove_file(&stale_compact)?;
            log!(Info, "removed stale journal.compact left by a crash");
        }

        // dmp-lint: allow(det-wall-clock) -- recovery-duration telemetry; replay state never reads it
        let recovery_started = Instant::now();
        let journal_path = cfg.dir.join("journal.wal");
        let (journal, journal_records) = Journal::open(&journal_path, cfg.fsync)?;

        // The journal itself must be internally gap-free: replaying
        // around a hole would silently drop mutations.
        for pair in journal_records.windows(2) {
            if let [(prev, _), (next, _)] = pair {
                if *next != prev + 1 {
                    return Err(ServiceError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "journal sequence gap: {prev} is followed by {next} in {}",
                            journal_path.display()
                        ),
                    )));
                }
            }
        }

        // Phase 1: restore the newest snapshot whose decoded state
        // digest-verifies; fall back candidate by candidate.
        let mut router = ShardRouter::new(&cfg.market, cfg.shards);
        let mut applied: u64 = 0;
        let mut snapshot_ok = false;
        let candidates = snapshot::list_snapshots(&cfg.dir);
        for (_, path) in candidates.iter().rev() {
            let Some(snap) = snapshot::load_file(path) else {
                metrics().recovery_snapshot_rejected.inc();
                log!(
                    Warn,
                    "snapshot unreadable: {}; trying older",
                    path.display()
                );
                continue;
            };
            match Self::restore_verified(&cfg, &snap) {
                Ok(restored) => {
                    router = restored;
                    applied = snap.seq;
                    snapshot_ok = true;
                    metrics().recovery_snapshot_verified.inc();
                    break;
                }
                Err(why) => {
                    metrics().recovery_snapshot_rejected.inc();
                    log!(
                        Warn,
                        "snapshot rejected seq={} ({why}); trying older",
                        snap.seq
                    );
                }
            }
        }

        // Seam check: the journal tail must connect to what we restored.
        // With no usable snapshot the journal must start at seq 1 (a
        // compacted journal cannot be replayed from genesis); with a
        // snapshot at S the first record must be ≤ S+1.
        if let Some((first, _)) = journal_records.first() {
            let resume_at = applied + 1;
            if *first > resume_at {
                return Err(ServiceError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "journal begins at seq {first} but recovery resumes at {resume_at} \
                         (snapshot seq {applied}): the covering prefix is gone from {}",
                        cfg.dir.display()
                    ),
                )));
            }
        }

        // Phase 2: replay the tail. Rejected commands replay as
        // rejections — apply errors are part of the deterministic
        // history.
        for (seq, cmd) in journal_records {
            if seq <= applied {
                continue; // covered by the restored snapshot
            }
            let _ = router.apply(&cmd);
            applied = seq;
        }
        metrics()
            .recovery_replay_us
            .record_duration_us(recovery_started.elapsed());
        log!(
            Info,
            "recovery complete seq={applied} snapshot_ok={snapshot_ok} dir={}",
            cfg.dir.display()
        );

        Ok(ServiceNode {
            cfg,
            router,
            inner: Mutex::new(NodeInner { journal }),
            applied: AtomicU64::new(applied),
            // dmp-lint: allow(det-wall-clock) -- /health uptime display; presentation, never state
            started: Instant::now(),
            health_cache: Mutex::new((u64::MAX, u64::MAX, u64::MAX, String::new())),
            follower: Mutex::new(None),
        })
    }

    /// Decode `snap` into a fresh router and prove equivalence: the
    /// restored state must reproduce the snapshot's recorded digest.
    fn restore_verified(cfg: &ServiceConfig, snap: &Snapshot) -> Result<ShardRouter, String> {
        let image = state::decode(&snap.state).map_err(|e| format!("decode: {e}"))?;
        let router = ShardRouter::new(&cfg.market, cfg.shards);
        router
            .restore_state(image)
            .map_err(|e| format!("restore: {e}"))?;
        let digest = router.state_digest();
        if digest != snap.digest {
            return Err(format!(
                "digest mismatch: snapshot {:016x}, restored {digest:016x}",
                snap.digest
            ));
        }
        Ok(router)
    }

    /// Apply one command: journal first (durable), then mutate the
    /// market, then maybe snapshot. Total order across callers: the
    /// gateway's apply-pool workers call this concurrently from
    /// several threads, and the internal mutex serializes them — the
    /// journal sequence and the router mutation for one command are a
    /// single critical section, so the WAL ordering invariant (durable
    /// before visible) holds no matter how many workers the
    /// [`gateway`](crate::gateway) runs.
    pub fn apply(&self, cmd: Command) -> Result<Outcome, ServiceError> {
        let m = metrics();
        let apply_hist = m.apply_us(&cmd);
        // dmp-lint: allow(det-wall-clock) -- apply latency telemetry; never applied state
        let apply_started = Instant::now();
        let mut inner = self.inner.lock();
        let seq = self.applied.load(Ordering::Relaxed) + 1;
        // dmp-lint: allow(lock-across-fsync) -- the WAL ordering invariant: append (durable) and apply (visible) must be one critical section, or a concurrent applier could expose state the journal has not persisted
        inner.journal.append(seq, &cmd)?;
        let result = self.router.apply(&cmd);
        self.applied.store(seq, Ordering::Relaxed);
        // Forward while still inside the critical section: concurrent
        // appliers must not interleave their follower deliveries, or a
        // worker replica would apply commands out of journal order and
        // diverge bit-for-bit even though every command arrived.
        if let Some(follower) = self.follower.lock().clone() {
            follower.on_applied(seq, &cmd);
        }
        apply_hist.record_duration_us(apply_started.elapsed());
        if self.cfg.snapshot_every > 0 && seq.is_multiple_of(self.cfg.snapshot_every) {
            // Best-effort: the command is already journaled and applied,
            // so a failed checkpoint must not turn a succeeded mutation
            // into a client-visible error (the journal stays
            // authoritative; recovery just replays more of it).
            if let Err(e) = self.checkpoint(&mut inner, seq) {
                log!(
                    Warn,
                    "checkpoint failed seq={seq} err={e}; continuing on journal alone"
                );
            }
        }
        result
    }

    /// Serialize the router's materialized state at `seq`, write it as
    /// a snapshot, and — when retention is bounded — verify the file
    /// on disk restores to a digest-identical state before pruning old
    /// snapshots and truncating the journal prefix it covers.
    ///
    /// Runs under the apply lock: the state must be quiescent while it
    /// serializes, and the journal must not advance between "snapshot
    /// durable" and "prefix truncated". `snapshot_every` bounds how
    /// often appliers pause behind this.
    fn checkpoint(&self, inner: &mut NodeInner, seq: u64) -> Result<(), ServiceError> {
        let m = metrics();
        let digest = self.router.state_digest();
        let snap = Snapshot {
            seq,
            digest,
            state: state::encode(&self.router.export_state()),
        };
        // dmp-lint: allow(det-wall-clock) -- snapshot-write telemetry; never applied state
        let write_started = Instant::now();
        let path = match snapshot::write_snapshot(&self.cfg.dir, &snap) {
            Ok(path) => {
                m.snapshot_writes.inc();
                m.snapshot_write_us
                    .record_duration_us(write_started.elapsed());
                if let Ok(meta) = std::fs::metadata(&path) {
                    m.snapshot_bytes.add(meta.len());
                }
                path
            }
            Err(e) => {
                m.snapshot_failures.inc();
                return Err(e.into());
            }
        };

        if self.cfg.keep_snapshots == 0 {
            return Ok(()); // unbounded retention: never compact
        }

        // Verified-durable gate: re-read the file we just renamed into
        // place and prove the *on-disk bytes* decode to an equivalent
        // state. Only then is the journal prefix redundant.
        let verified = snapshot::load_file(&path)
            .ok_or_else(|| "reread failed".to_string())
            .and_then(|on_disk| Self::restore_verified(&self.cfg, &on_disk).map(|_| ()));
        if let Err(why) = verified {
            m.snapshot_failures.inc();
            return Err(ServiceError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("snapshot verification failed ({why}); journal kept intact"),
            )));
        }

        let pruned = snapshot::prune_snapshots(&self.cfg.dir, self.cfg.keep_snapshots)?;
        if pruned > 0 {
            m.snapshots_pruned.add(pruned as u64);
        }
        // Truncate up to the oldest snapshot still on disk: every
        // retained snapshot must keep a connectable tail behind it.
        if let Some((oldest, _)) = snapshot::list_snapshots(&self.cfg.dir).first() {
            let dropped = inner.journal.truncate_prefix(*oldest)?;
            if dropped > 0 {
                m.journal_compactions.inc();
                m.journal_compacted_bytes.add(dropped);
                log!(
                    Info,
                    "journal compacted: dropped {dropped} bytes up to seq {oldest}"
                );
            }
        }
        Ok(())
    }

    /// Write (and, under bounded retention, verify + compact) a
    /// snapshot right now (admin hook; also used by tests).
    pub fn snapshot_now(&self) -> Result<u64, ServiceError> {
        let mut inner = self.inner.lock();
        let seq = self.applied.load(Ordering::Relaxed);
        self.checkpoint(&mut inner, seq)?;
        Ok(seq)
    }

    /// Time since recovery finished.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The `/health` JSON body. Cached: re-rendered only when the
    /// applied sequence, the round counter, or the decisecond of
    /// uptime changes (so `uptime_s` has 0.1 s granularity — plenty
    /// for liveness, and it keeps the float's decimal repr short and
    /// cheap to format).
    pub fn health_body(&self) -> String {
        use crate::wire::Json;
        let applied = self.applied();
        let rounds = self.router.rounds_completed();
        let uptime_ds = self.uptime().as_millis() as u64 / 100;
        let mut cache = self.health_cache.lock();
        if (cache.0, cache.1, cache.2) != (applied, rounds, uptime_ds) {
            let body = Json::obj([
                ("status", Json::str("ok")),
                ("shards", Json::Num(self.router.shard_count() as f64)),
                ("applied", Json::Num(applied as f64)),
                ("round", Json::Num(rounds as f64)),
                ("rounds_completed", Json::Num(rounds as f64)),
                ("uptime_s", Json::Num(uptime_ds as f64 / 10.0)),
            ])
            .dump();
            *cache = (applied, rounds, uptime_ds, body);
        }
        cache.3.clone()
    }

    /// Sequence number of the last applied command.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Install the applied-command observer. Call only after recovery
    /// (i.e. on an already-open node): replay must never forward.
    pub fn set_follower(&self, follower: Arc<dyn CommandFollower>) {
        *self.follower.lock() = Some(follower);
    }

    /// Run `f` with the apply path quiesced: no command can journal or
    /// apply while it runs, so the router state and the applied
    /// sequence it observes are one consistent cut. The coordinator
    /// uses this to capture the state image + watermark that provisions
    /// a fresh worker replica.
    pub fn quiesced<R>(&self, f: impl FnOnce(&ShardRouter, u64) -> R) -> R {
        let _inner = self.inner.lock();
        f(&self.router, self.applied.load(Ordering::Relaxed))
    }

    /// The shard router (reads don't go through the journal).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The node configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Digest of the externally-visible market state.
    pub fn state_digest(&self) -> u64 {
        self.router.state_digest()
    }

    /// Current journal size in bytes (admin / bench probe).
    pub fn journal_len(&self) -> Result<u64, ServiceError> {
        Ok(self.inner.lock().journal.len()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::OfferSpec;
    use dmp_mechanism::design::MarketDesign;

    fn config(name: &str) -> ServiceConfig {
        let dir = std::env::temp_dir().join(format!("dmp-node-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let market =
            MarketConfig::external(5).with_design(MarketDesign::posted_price_baseline(10.0));
        ServiceConfig::new(dir, market).with_shards(2)
    }

    fn enroll(i: usize) -> Command {
        Command::Enroll {
            name: format!("p{i}"),
            role: "buyer".into(),
        }
    }

    #[test]
    fn apply_then_reopen_restores_state() {
        let cfg = config("reopen");
        let digest = {
            let node = ServiceNode::open(cfg.clone()).unwrap();
            node.apply(Command::Enroll {
                name: "alice".into(),
                role: "buyer".into(),
            })
            .unwrap();
            node.apply(Command::Deposit {
                account: "alice".into(),
                amount: 42.0,
            })
            .unwrap();
            node.apply(Command::SubmitOffer(OfferSpec::simple("alice", ["k"], 5.0)))
                .unwrap();
            node.state_digest()
        };
        let node = ServiceNode::open(cfg).unwrap();
        assert_eq!(node.applied(), 3);
        assert_eq!(node.state_digest(), digest);
        assert!(node.router().balance("alice") >= 42.0);
    }

    #[test]
    fn rejected_commands_are_journaled_and_replay() {
        let cfg = config("rejected");
        {
            let node = ServiceNode::open(cfg.clone()).unwrap();
            // Offer from a never-enrolled buyer: rejected but journaled.
            assert!(node
                .apply(Command::SubmitOffer(OfferSpec::simple("ghost", ["k"], 1.0)))
                .is_err());
            assert_eq!(node.applied(), 1);
        }
        let node = ServiceNode::open(cfg).unwrap();
        assert_eq!(node.applied(), 1, "rejected command still replays");
    }

    #[test]
    fn mismatched_config_refused_on_reopen() {
        let cfg = config("fingerprint");
        {
            ServiceNode::open(cfg.clone()).unwrap();
        }
        // Same dir, different shard count: replay would route
        // participants differently, so open must refuse.
        let reshaped = cfg.clone().with_shards(8);
        assert!(ServiceNode::open(reshaped).is_err());
        // The original config still opens.
        assert!(ServiceNode::open(cfg).is_ok());
    }

    #[test]
    fn snapshot_accelerated_recovery_matches_full_replay() {
        let cfg = config("snap").with_snapshot_every(2);
        {
            let node = ServiceNode::open(cfg.clone()).unwrap();
            for i in 0..5 {
                node.apply(enroll(i)).unwrap();
            }
        }
        // Snapshot exists at seq 4; journal tail has seq 5.
        let node = ServiceNode::open(cfg.clone()).unwrap();
        assert_eq!(node.applied(), 5);
        // A journal-only rebuild agrees bit-for-bit.
        let mut cfg2 = cfg;
        let dir2 = cfg2.dir.with_extension("journal-only");
        let _ = std::fs::remove_dir_all(&dir2);
        std::fs::create_dir_all(&dir2).unwrap();
        std::fs::copy(
            node.config().dir.join("journal.wal"),
            dir2.join("journal.wal"),
        )
        .unwrap();
        cfg2.dir = dir2;
        let journal_only = ServiceNode::open(cfg2).unwrap();
        assert_eq!(journal_only.state_digest(), node.state_digest());
    }

    #[test]
    fn compaction_shrinks_journal_and_recovery_agrees() {
        let cfg = config("compact")
            .with_snapshot_every(4)
            .with_keep_snapshots(1);
        let digest = {
            let node = ServiceNode::open(cfg.clone()).unwrap();
            for i in 0..10 {
                node.apply(enroll(i)).unwrap();
            }
            // Checkpoints at 4 and 8 each verified + compacted: the
            // journal holds only seq 9..10.
            let len = node.journal_len().unwrap();
            assert!(len > 0);
            let full: u64 = 10 * 50; // ~50 bytes per enroll record lower bound sanity
            assert!(len < full, "journal did not shrink: {len} bytes");
            node.state_digest()
        };
        let node = ServiceNode::open(cfg.clone()).unwrap();
        assert_eq!(node.applied(), 10);
        assert_eq!(node.state_digest(), digest);
        // Retention: only one snapshot file remains.
        assert_eq!(snapshot::list_snapshots(&cfg.dir).len(), 1);
    }

    #[test]
    fn compacted_journal_without_snapshot_fails_loudly() {
        let cfg = config("no-genesis")
            .with_snapshot_every(4)
            .with_keep_snapshots(1);
        {
            let node = ServiceNode::open(cfg.clone()).unwrap();
            for i in 0..6 {
                node.apply(enroll(i)).unwrap();
            }
        }
        // Delete every snapshot: the compacted journal alone cannot
        // reconstruct state, and recovery must say so rather than
        // replay a partial history.
        for (_, path) in snapshot::list_snapshots(&cfg.dir) {
            std::fs::remove_file(path).unwrap();
        }
        let err = match ServiceNode::open(cfg) {
            Ok(_) => panic!("open succeeded on an uncovered compacted journal"),
            Err(e) => e,
        };
        assert!(
            err.to_string().contains("covering prefix"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn journal_gap_fails_loudly() {
        let cfg = config("gap");
        {
            let node = ServiceNode::open(cfg.clone()).unwrap();
            for i in 0..3 {
                node.apply(enroll(i)).unwrap();
            }
        }
        // Splice record 2 out of the journal: 1,3 is a hole, and
        // replaying around it would silently drop a mutation.
        let path = cfg.dir.join("journal.wal");
        let bytes = std::fs::read(&path).unwrap();
        let (payloads, _) = crate::journal::scan_frames(&bytes);
        assert_eq!(payloads.len(), 3);
        let mut spliced = Vec::new();
        crate::journal::frame(&payloads[0], &mut spliced);
        crate::journal::frame(&payloads[2], &mut spliced);
        std::fs::write(&path, &spliced).unwrap();
        let err = match ServiceNode::open(cfg) {
            Ok(_) => panic!("open succeeded across a journal sequence gap"),
            Err(e) => e,
        };
        assert!(
            err.to_string().contains("sequence gap"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn torn_meta_is_impossible_but_stale_tmp_is_harmless() {
        // A crash between meta tmp-write and rename leaves only the
        // tmp; the next open rewrites the real meta and proceeds.
        let cfg = config("meta-tmp");
        {
            ServiceNode::open(cfg.clone()).unwrap();
        }
        std::fs::write(cfg.dir.join("node.meta.tmp"), b"garbage").unwrap();
        assert!(ServiceNode::open(cfg).is_ok());
    }
}
