//! The [`ServiceNode`]: journal + snapshots + shard router behind one
//! linearized `apply` path.
//!
//! Write path (WAL ordering):
//!
//! ```text
//! request → Command → journal.append (fsync) → router.apply → Outcome
//! ```
//!
//! A command is durable before it is applied, so the externally-visible
//! state is always reconstructible. Recovery runs `snapshot + replay`:
//! load the newest intact snapshot, replay its command prefix into a
//! fresh router, verify the state digest, then replay the journal tail
//! (`seq >` snapshot). A digest mismatch or torn snapshot falls back to
//! replaying the whole journal — the journal is the source of truth,
//! snapshots only make recovery fast and *verified*.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dmp_core::market::MarketConfig;
use dmp_telemetry::log;
use parking_lot::Mutex;

use crate::command::Command;
use crate::error::ServiceError;
use crate::journal::Journal;
use crate::metrics::metrics;
use crate::shard::{Outcome, ShardRouter};
use crate::snapshot::{self, Snapshot};

/// Node deployment configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Durability directory (journal + snapshots).
    pub dir: PathBuf,
    /// Base market configuration (each shard derives its seed from it).
    pub market: MarketConfig,
    /// Shard count (participants hash across these).
    pub shards: usize,
    /// Write a snapshot every N applied commands (0 = only on demand).
    pub snapshot_every: u64,
    /// `fdatasync` the journal on every append.
    pub fsync: bool,
}

impl ServiceConfig {
    /// Defaults: 4 shards, snapshot every 256 commands, fsync on.
    pub fn new(dir: impl Into<PathBuf>, market: MarketConfig) -> Self {
        ServiceConfig {
            dir: dir.into(),
            market,
            shards: 4,
            snapshot_every: 256,
            fsync: true,
        }
    }

    /// Override the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Override the snapshot cadence.
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Toggle per-append fsync.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }
}

struct NodeInner {
    journal: Journal,
    /// Full command history since genesis (snapshot prefix + tail);
    /// what the next snapshot will contain.
    history: Vec<Command>,
}

/// A durable, sharded market node.
pub struct ServiceNode {
    cfg: ServiceConfig,
    router: ShardRouter,
    inner: Mutex<NodeInner>,
    applied: AtomicU64,
    /// When recovery finished (drives `/health` uptime).
    started: Instant,
    /// Rendered `/health` body, keyed on the atomics it reports. The
    /// reactor serves `/health` inline per request; rebuilding ~100
    /// bytes of JSON (and formatting floats) every time is measurable
    /// at gateway rps, so the body is re-rendered only when a key
    /// component changes. This mutex is private to the health path and
    /// uncontended — it never orders after the apply/WAL lock.
    health_cache: Mutex<(u64, u64, u64, String)>,
}

impl ServiceNode {
    /// The replay-relevant identity of a node deployment. Reopening a
    /// directory with a different fingerprint would silently hash
    /// participants onto different shards and draw different RNG
    /// streams, so recovery would "succeed" with the wrong state —
    /// [`ServiceNode::open`] persists this and refuses a mismatch.
    fn config_fingerprint(cfg: &ServiceConfig) -> String {
        // v2: two-phase cross-shard clearing (global offer ids, shared
        // substrate, coordinator round seeds). A v1 journal replayed
        // under v2 semantics would produce different trades, so the
        // version is part of the fingerprint and v1 directories are
        // refused rather than silently re-interpreted.
        format!(
            "v2 shards={} seed={} kind={:?} max_candidates={} contribution_reward={}",
            cfg.shards,
            cfg.market.seed,
            cfg.market.kind,
            cfg.market.max_candidates,
            cfg.market.contribution_reward,
        )
    }

    /// Open a node, running crash recovery against `cfg.dir`.
    pub fn open(cfg: ServiceConfig) -> Result<ServiceNode, ServiceError> {
        std::fs::create_dir_all(&cfg.dir)?;

        // Guard the durability contract: journal replay only reproduces
        // the pre-crash state under the config that wrote it.
        let fingerprint = Self::config_fingerprint(&cfg);
        let meta_path = cfg.dir.join("node.meta");
        match std::fs::read_to_string(&meta_path) {
            Ok(existing) if existing.trim() != fingerprint => {
                return Err(ServiceError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "service config does not match the journal in {}: \
                         on disk '{}', requested '{}'",
                        cfg.dir.display(),
                        existing.trim(),
                        fingerprint
                    ),
                )));
            }
            Ok(_) => {}
            Err(_) => std::fs::write(&meta_path, &fingerprint)?,
        }

        // dmp-lint: allow(det-wall-clock) -- recovery-duration telemetry; replay state never reads it
        let recovery_started = Instant::now();
        let journal_path = cfg.dir.join("journal.wal");
        let (journal, journal_records) = Journal::open(&journal_path, cfg.fsync)?;

        let mut router = ShardRouter::new(&cfg.market, cfg.shards);
        let mut history: Vec<Command> = Vec::new();
        let mut applied: u64 = 0;

        // Phase 1: snapshot. Replay its prefix and verify the digest.
        let mut snapshot_ok = false;
        if let Some(snap) = snapshot::load_latest(&cfg.dir) {
            for cmd in &snap.commands {
                let _ = router.apply(cmd);
            }
            if router.state_digest() == snap.digest {
                applied = snap.seq;
                history = snap.commands;
                snapshot_ok = true;
                metrics().recovery_snapshot_verified.inc();
            } else {
                // Replay disagreed with the checkpointed digest: the
                // snapshot is unusable. Rebuild from genesis below.
                router = ShardRouter::new(&cfg.market, cfg.shards);
                metrics().recovery_snapshot_rejected.inc();
                log!(
                    Warn,
                    "snapshot digest mismatch seq={} dir={}; replaying full journal",
                    snap.seq,
                    cfg.dir.display()
                );
            }
        }

        // Phase 2: journal tail (or the whole journal when no snapshot
        // survived). Rejected commands replay as rejections — apply
        // errors are part of the deterministic history.
        for (seq, cmd) in journal_records {
            if snapshot_ok && seq <= applied {
                continue;
            }
            let _ = router.apply(&cmd);
            history.push(cmd);
            applied = seq;
        }
        metrics()
            .recovery_replay_us
            .record_duration_us(recovery_started.elapsed());
        log!(
            Info,
            "recovery complete seq={applied} snapshot_ok={snapshot_ok} dir={}",
            cfg.dir.display()
        );

        Ok(ServiceNode {
            cfg,
            router,
            inner: Mutex::new(NodeInner { journal, history }),
            applied: AtomicU64::new(applied),
            // dmp-lint: allow(det-wall-clock) -- /health uptime display; presentation, never state
            started: Instant::now(),
            health_cache: Mutex::new((u64::MAX, u64::MAX, u64::MAX, String::new())),
        })
    }

    /// Apply one command: journal first (durable), then mutate the
    /// market, then maybe snapshot. Total order across callers: the
    /// gateway's apply-pool workers call this concurrently from
    /// several threads, and the internal mutex serializes them — the
    /// journal sequence, the router mutation and the history entry for
    /// one command are a single critical section, so the WAL ordering
    /// invariant (durable before visible) holds no matter how many
    /// workers the [`gateway`](crate::gateway) runs.
    pub fn apply(&self, cmd: Command) -> Result<Outcome, ServiceError> {
        let m = metrics();
        let apply_hist = m.apply_us(&cmd);
        // dmp-lint: allow(det-wall-clock) -- apply latency telemetry; never applied state
        let apply_started = Instant::now();
        let mut inner = self.inner.lock();
        let seq = self.applied.load(Ordering::Relaxed) + 1;
        // dmp-lint: allow(lock-across-fsync) -- the WAL ordering invariant: append (durable) and apply (visible) must be one critical section, or a concurrent applier could expose state the journal has not persisted
        inner.journal.append(seq, &cmd)?;
        let result = self.router.apply(&cmd);
        inner.history.push(cmd);
        self.applied.store(seq, Ordering::Relaxed);
        apply_hist.record_duration_us(apply_started.elapsed());
        if self.cfg.snapshot_every > 0 && seq.is_multiple_of(self.cfg.snapshot_every) {
            let snap = Snapshot {
                seq,
                digest: self.router.state_digest(),
                commands: inner.history.clone(),
            };
            // Best-effort: the command is already journaled and applied,
            // so a failed checkpoint must not turn a succeeded mutation
            // into a client-visible error (the journal stays
            // authoritative; recovery just replays more of it).
            // dmp-lint: allow(det-wall-clock) -- snapshot-write telemetry; never applied state
            let write_started = Instant::now();
            // dmp-lint: allow(lock-across-fsync) -- the checkpoint must serialize a quiescent history; appliers pausing behind this lock is the documented cost (snapshot_every bounds the frequency)
            match snapshot::write_snapshot(&self.cfg.dir, &snap) {
                Ok(_) => {
                    m.snapshot_writes.inc();
                    m.snapshot_write_us
                        .record_duration_us(write_started.elapsed());
                }
                Err(e) => {
                    m.snapshot_failures.inc();
                    log!(
                        Warn,
                        "snapshot failed seq={seq} err={e}; continuing on journal alone"
                    );
                }
            }
        }
        result
    }

    /// Write a snapshot right now (admin hook; also used by tests).
    pub fn snapshot_now(&self) -> Result<u64, ServiceError> {
        let m = metrics();
        let inner = self.inner.lock();
        let seq = self.applied.load(Ordering::Relaxed);
        let snap = Snapshot {
            seq,
            digest: self.router.state_digest(),
            commands: inner.history.clone(),
        };
        // dmp-lint: allow(det-wall-clock) -- snapshot-write telemetry; never applied state
        let write_started = Instant::now();
        // dmp-lint: allow(lock-across-fsync) -- explicit checkpoint: history must not advance while it serializes; callers opt into the pause
        match snapshot::write_snapshot(&self.cfg.dir, &snap) {
            Ok(_) => {
                m.snapshot_writes.inc();
                m.snapshot_write_us
                    .record_duration_us(write_started.elapsed());
            }
            Err(e) => {
                m.snapshot_failures.inc();
                return Err(e.into());
            }
        }
        Ok(seq)
    }

    /// Time since recovery finished.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The `/health` JSON body. Cached: re-rendered only when the
    /// applied sequence, the round counter, or the decisecond of
    /// uptime changes (so `uptime_s` has 0.1 s granularity — plenty
    /// for liveness, and it keeps the float's decimal repr short and
    /// cheap to format).
    pub fn health_body(&self) -> String {
        use crate::wire::Json;
        let applied = self.applied();
        let rounds = self.router.rounds_completed();
        let uptime_ds = self.uptime().as_millis() as u64 / 100;
        let mut cache = self.health_cache.lock();
        if (cache.0, cache.1, cache.2) != (applied, rounds, uptime_ds) {
            let body = Json::obj([
                ("status", Json::str("ok")),
                ("shards", Json::Num(self.router.shard_count() as f64)),
                ("applied", Json::Num(applied as f64)),
                ("round", Json::Num(rounds as f64)),
                ("rounds_completed", Json::Num(rounds as f64)),
                ("uptime_s", Json::Num(uptime_ds as f64 / 10.0)),
            ])
            .dump();
            *cache = (applied, rounds, uptime_ds, body);
        }
        cache.3.clone()
    }

    /// Sequence number of the last applied command.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// The shard router (reads don't go through the journal).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The node configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Digest of the externally-visible market state.
    pub fn state_digest(&self) -> u64 {
        self.router.state_digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::OfferSpec;
    use dmp_mechanism::design::MarketDesign;

    fn config(name: &str) -> ServiceConfig {
        let dir = std::env::temp_dir().join(format!("dmp-node-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let market =
            MarketConfig::external(5).with_design(MarketDesign::posted_price_baseline(10.0));
        ServiceConfig::new(dir, market).with_shards(2)
    }

    #[test]
    fn apply_then_reopen_restores_state() {
        let cfg = config("reopen");
        let digest = {
            let node = ServiceNode::open(cfg.clone()).unwrap();
            node.apply(Command::Enroll {
                name: "alice".into(),
                role: "buyer".into(),
            })
            .unwrap();
            node.apply(Command::Deposit {
                account: "alice".into(),
                amount: 42.0,
            })
            .unwrap();
            node.apply(Command::SubmitOffer(OfferSpec::simple("alice", ["k"], 5.0)))
                .unwrap();
            node.state_digest()
        };
        let node = ServiceNode::open(cfg).unwrap();
        assert_eq!(node.applied(), 3);
        assert_eq!(node.state_digest(), digest);
        assert!(node.router().balance("alice") >= 42.0);
    }

    #[test]
    fn rejected_commands_are_journaled_and_replay() {
        let cfg = config("rejected");
        {
            let node = ServiceNode::open(cfg.clone()).unwrap();
            // Offer from a never-enrolled buyer: rejected but journaled.
            assert!(node
                .apply(Command::SubmitOffer(OfferSpec::simple("ghost", ["k"], 1.0)))
                .is_err());
            assert_eq!(node.applied(), 1);
        }
        let node = ServiceNode::open(cfg).unwrap();
        assert_eq!(node.applied(), 1, "rejected command still replays");
    }

    #[test]
    fn mismatched_config_refused_on_reopen() {
        let cfg = config("fingerprint");
        {
            ServiceNode::open(cfg.clone()).unwrap();
        }
        // Same dir, different shard count: replay would route
        // participants differently, so open must refuse.
        let reshaped = cfg.clone().with_shards(8);
        assert!(ServiceNode::open(reshaped).is_err());
        // The original config still opens.
        assert!(ServiceNode::open(cfg).is_ok());
    }

    #[test]
    fn snapshot_accelerated_recovery_matches_full_replay() {
        let cfg = config("snap").with_snapshot_every(2);
        {
            let node = ServiceNode::open(cfg.clone()).unwrap();
            for i in 0..5 {
                node.apply(Command::Enroll {
                    name: format!("p{i}"),
                    role: "buyer".into(),
                })
                .unwrap();
            }
        }
        // Snapshot exists at seq 4; journal tail has seq 5.
        let node = ServiceNode::open(cfg.clone()).unwrap();
        assert_eq!(node.applied(), 5);
        // A journal-only rebuild agrees bit-for-bit.
        let mut cfg2 = cfg;
        let dir2 = cfg2.dir.with_extension("journal-only");
        let _ = std::fs::remove_dir_all(&dir2);
        std::fs::create_dir_all(&dir2).unwrap();
        std::fs::copy(
            node.config().dir.join("journal.wal"),
            dir2.join("journal.wal"),
        )
        .unwrap();
        cfg2.dir = dir2;
        let journal_only = ServiceNode::open(cfg2).unwrap();
        assert_eq!(journal_only.state_digest(), node.state_digest());
    }
}
