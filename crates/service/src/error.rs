//! Service-layer errors.

use std::fmt;

use crate::wire::WireError;

/// Anything that can go wrong between a wire request and the market.
#[derive(Debug)]
pub enum ServiceError {
    /// Journal / snapshot / socket I/O failed.
    Io(std::io::Error),
    /// The request body was not valid wire JSON (or not a valid
    /// command).
    Wire(WireError),
    /// The market refused the command (unknown participant, PII,
    /// insufficient funds, ...). The command is still journaled —
    /// rejection is deterministic under replay.
    Rejected(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Wire(e) => write!(f, "bad request: {e}"),
            ServiceError::Rejected(msg) => write!(f, "rejected: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}
