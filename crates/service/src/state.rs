//! Materialized-state snapshot codec (snapshot format v2).
//!
//! Serializes a [`RouterImage`] — the shard router's complete durable
//! state — to wire JSON and back. The encoding is *lossless and
//! canonical*: every integer is rendered as a decimal string (wire JSON
//! numbers are `f64`, which cannot carry `u64` RNG state words), every
//! float as the hex form of its IEEE-754 bit pattern (bit-exact, and
//! immune to the wire codec's non-finite rejection). `decode ∘ encode`
//! reproduces a digest-identical router state; the property suite in
//! `tests/state_props.rs` pins that down.
//!
//! The codec never panics on malformed input: a corrupt snapshot decodes
//! to a [`WireError`] and recovery falls back to the previous snapshot
//! or full journal replay.

use std::sync::Arc;

use dmp_core::arbiter::services::Purchase;
use dmp_core::license::{ContextualIntegrityPolicy, License};
use dmp_core::market::{
    DatasetShare, Delivery, MarketShardState, NegotiationRequest, Offer, OfferState, Participant,
    Settlement, SubstrateImage, TransactionRecord,
};
use dmp_core::trust::{AuditEvent, Dispute, DisputeState};
use dmp_discovery::metadata::{DatasetEntryImage, MetadataImage};
use dmp_discovery::LineageEvent;
use dmp_mechanism::wtp::{IntrinsicConstraints, PriceCurve, TaskKind, WtpFunction};
use dmp_relation::{
    DataType, DatasetId, Field, ProvAtom, Provenance, Relation, Row, Schema, Value,
};

use crate::shard::RouterImage;
use crate::wire::{Json, WireError};

/// The framed form of a materialized snapshot: one JSON tree for the
/// shared substrate, one per shard, and one for the router-level
/// allocators. `snapshot.rs` writes each tree as its own CRC frame so a
/// torn write is detected per-section.
#[derive(Debug, Clone, PartialEq)]
pub struct StateImage {
    /// Shared substrate (catalog, lineage, ledger, licensing terms).
    pub substrate: Json,
    /// One tree per shard, in shard order.
    pub shards: Vec<Json>,
    /// Router-level allocators (offer ids, round-seed RNG, round count).
    pub router: Json,
}

/// Encode a router state image into its wire-JSON snapshot form.
pub fn encode(image: &RouterImage) -> StateImage {
    let [r0, r1, r2, r3] = image.round_rng;
    StateImage {
        substrate: enc_substrate(&image.substrate),
        shards: image.shards.iter().map(enc_shard).collect(),
        router: Json::obj([
            ("next_offer", enc_u64(image.next_offer)),
            (
                "rng",
                Json::Arr(vec![enc_u64(r0), enc_u64(r1), enc_u64(r2), enc_u64(r3)]),
            ),
            ("rounds", enc_u64(image.rounds)),
        ]),
    }
}

/// Decode a snapshot back into a router state image. Any structural
/// defect — missing field, bad integer, unknown tag — is a [`WireError`];
/// the caller treats the snapshot as unusable and falls back.
pub fn decode(state: &StateImage) -> Result<RouterImage, WireError> {
    let router = &state.router;
    Ok(RouterImage {
        substrate: dec_substrate(&state.substrate)?,
        shards: state
            .shards
            .iter()
            .map(dec_shard)
            .collect::<Result<Vec<_>, _>>()?,
        next_offer: dec_u64(field(router, "next_offer")?)?,
        round_rng: dec_rng(field(router, "rng")?)?,
        rounds: dec_u64(field(router, "rounds")?)?,
    })
}

// ---------------------------------------------------------------------
// Scalar atoms.
// ---------------------------------------------------------------------

pub(crate) fn enc_u64(v: u64) -> Json {
    Json::Str(v.to_string())
}

fn enc_i64(v: i64) -> Json {
    Json::Str(v.to_string())
}

fn enc_u32(v: u32) -> Json {
    Json::Str(v.to_string())
}

pub(crate) fn enc_usize(v: usize) -> Json {
    Json::Str(v.to_string())
}

/// Floats travel as the hex bit pattern: exact for every value including
/// NaN payloads and infinities, which wire JSON cannot represent.
pub(crate) fn enc_f64(v: f64) -> Json {
    Json::Str(format!("{:016x}", v.to_bits()))
}

pub(crate) fn dec_u64(j: &Json) -> Result<u64, WireError> {
    j.as_str()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| WireError::new("expected decimal u64 string"))
}

fn dec_i64(j: &Json) -> Result<i64, WireError> {
    j.as_str()
        .and_then(|s| s.parse::<i64>().ok())
        .ok_or_else(|| WireError::new("expected decimal i64 string"))
}

fn dec_u32(j: &Json) -> Result<u32, WireError> {
    j.as_str()
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| WireError::new("expected decimal u32 string"))
}

pub(crate) fn dec_usize(j: &Json) -> Result<usize, WireError> {
    j.as_str()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| WireError::new("expected decimal usize string"))
}

pub(crate) fn dec_f64(j: &Json) -> Result<f64, WireError> {
    j.as_str()
        .filter(|s| s.len() == 16)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .map(f64::from_bits)
        .ok_or_else(|| WireError::new("expected 16-hex-digit f64 bit pattern"))
}

pub(crate) fn dec_str(j: &Json) -> Result<String, WireError> {
    j.as_str()
        .map(str::to_string)
        .ok_or_else(|| WireError::new("expected string"))
}

fn dec_bool(j: &Json) -> Result<bool, WireError> {
    j.as_bool().ok_or_else(|| WireError::new("expected bool"))
}

// ---------------------------------------------------------------------
// Structural helpers.
// ---------------------------------------------------------------------

pub(crate) fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    obj.get(key)
        .ok_or_else(|| WireError::new(format!("missing field '{key}'")))
}

pub(crate) fn arr(j: &Json) -> Result<&[Json], WireError> {
    j.as_arr().ok_or_else(|| WireError::new("expected array"))
}

/// Positional element of a tuple-encoded array.
fn elem(j: &Json, i: usize) -> Result<&Json, WireError> {
    j.as_arr()
        .and_then(|a| a.get(i))
        .ok_or_else(|| WireError::new(format!("missing tuple element {i}")))
}

/// The `k` discriminant of a tagged object.
fn kind(j: &Json) -> Result<&str, WireError> {
    j.get("k")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new("missing variant tag 'k'"))
}

fn enc_opt<T>(v: &Option<T>, enc: impl Fn(&T) -> Json) -> Json {
    match v {
        Some(inner) => enc(inner),
        None => Json::Null,
    }
}

fn dec_opt<T>(
    j: &Json,
    dec: impl Fn(&Json) -> Result<T, WireError>,
) -> Result<Option<T>, WireError> {
    match j {
        Json::Null => Ok(None),
        other => dec(other).map(Some),
    }
}

pub(crate) fn enc_str_vec(items: &[String]) -> Json {
    Json::Arr(items.iter().map(Json::str).collect())
}

pub(crate) fn dec_str_vec(j: &Json) -> Result<Vec<String>, WireError> {
    arr(j)?.iter().map(dec_str).collect()
}

pub(crate) fn enc_dataset_vec(items: &[DatasetId]) -> Json {
    Json::Arr(items.iter().map(|d| enc_u64(d.0)).collect())
}

pub(crate) fn dec_dataset_vec(j: &Json) -> Result<Vec<DatasetId>, WireError> {
    arr(j)?.iter().map(|v| dec_u64(v).map(DatasetId)).collect()
}

fn dec_rng(j: &Json) -> Result<[u64; 4], WireError> {
    let words = arr(j)?.iter().map(dec_u64).collect::<Result<Vec<_>, _>>()?;
    <[u64; 4]>::try_from(words).map_err(|_| WireError::new("rng state must be 4 words"))
}

// ---------------------------------------------------------------------
// Relations and cell values.
// ---------------------------------------------------------------------

fn dtype_tag(t: DataType) -> &'static str {
    match t {
        DataType::Bool => "bool",
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Str => "str",
        DataType::Timestamp => "ts",
        DataType::Any => "any",
    }
}

fn dec_dtype(j: &Json) -> Result<DataType, WireError> {
    match j.as_str() {
        Some("bool") => Ok(DataType::Bool),
        Some("int") => Ok(DataType::Int),
        Some("float") => Ok(DataType::Float),
        Some("str") => Ok(DataType::Str),
        Some("ts") => Ok(DataType::Timestamp),
        Some("any") => Ok(DataType::Any),
        _ => Err(WireError::new("unknown dtype tag")),
    }
}

/// Cell values as compact tagged tuples: `["N"]`, `["B",bool]`,
/// `["I","42"]`, `["F","<bits>"]`, `["S","text"]`, `["T","-3"]`,
/// `["M",[["<src>",value],...]]`.
fn enc_value(v: &Value) -> Json {
    match v {
        Value::Null => Json::Arr(vec![Json::str("N")]),
        Value::Bool(b) => Json::Arr(vec![Json::str("B"), Json::Bool(*b)]),
        Value::Int(i) => Json::Arr(vec![Json::str("I"), enc_i64(*i)]),
        Value::Float(f) => Json::Arr(vec![Json::str("F"), enc_f64(*f)]),
        Value::Str(s) => Json::Arr(vec![Json::str("S"), Json::str(s.as_ref())]),
        Value::Timestamp(t) => Json::Arr(vec![Json::str("T"), enc_i64(*t)]),
        Value::Multi(parts) => Json::Arr(vec![
            Json::str("M"),
            Json::Arr(
                parts
                    .iter()
                    .map(|s| Json::Arr(vec![enc_u64(s.source.0), enc_value(&s.value)]))
                    .collect(),
            ),
        ]),
    }
}

fn dec_value(j: &Json) -> Result<Value, WireError> {
    let tag = elem(j, 0)?
        .as_str()
        .ok_or_else(|| WireError::new("value tag must be a string"))?;
    match tag {
        "N" => Ok(Value::Null),
        "B" => dec_bool(elem(j, 1)?).map(Value::Bool),
        "I" => dec_i64(elem(j, 1)?).map(Value::Int),
        "F" => dec_f64(elem(j, 1)?).map(Value::Float),
        "S" => {
            Ok(Value::Str(Arc::from(elem(j, 1)?.as_str().ok_or_else(
                || WireError::new("expected string payload"),
            )?)))
        }
        "T" => dec_i64(elem(j, 1)?).map(Value::Timestamp),
        "M" => {
            let parts = arr(elem(j, 1)?)?
                .iter()
                .map(|p| {
                    Ok(dmp_relation::Sourced::new(
                        DatasetId(dec_u64(elem(p, 0)?)?),
                        dec_value(elem(p, 1)?)?,
                    ))
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(Value::Multi(parts))
        }
        _ => Err(WireError::new("unknown value tag")),
    }
}

pub(crate) fn enc_relation(rel: &Relation) -> Json {
    Json::obj([
        ("name", Json::str(rel.name())),
        ("source", enc_opt(&rel.source(), |d| enc_u64(d.0))),
        (
            "schema",
            Json::Arr(
                rel.schema()
                    .fields()
                    .iter()
                    .map(|f| Json::Arr(vec![Json::str(f.name()), Json::str(dtype_tag(f.dtype()))]))
                    .collect(),
            ),
        ),
        (
            "rows",
            Json::Arr(
                rel.rows()
                    .iter()
                    .map(|row| {
                        Json::Arr(vec![
                            Json::Arr(row.values().iter().map(enc_value).collect()),
                            Json::Arr(
                                row.provenance()
                                    .atoms()
                                    .iter()
                                    .map(|a| Json::Arr(vec![enc_u64(a.dataset.0), enc_u64(a.row)]))
                                    .collect(),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

pub(crate) fn dec_relation(j: &Json) -> Result<Relation, WireError> {
    let name = dec_str(field(j, "name")?)?;
    let source = dec_opt(field(j, "source")?, dec_u64)?;
    let fields = arr(field(j, "schema")?)?
        .iter()
        .map(|f| Ok(Field::new(dec_str(elem(f, 0)?)?, dec_dtype(elem(f, 1)?)?)))
        .collect::<Result<Vec<_>, WireError>>()?;
    let schema = Schema::new(fields)
        .map_err(|e| WireError::new(format!("bad snapshot schema: {e}")))?
        .shared();
    let rows = arr(field(j, "rows")?)?
        .iter()
        .map(|row| {
            let values = arr(elem(row, 0)?)?
                .iter()
                .map(dec_value)
                .collect::<Result<Vec<_>, WireError>>()?;
            let atoms = arr(elem(row, 1)?)?
                .iter()
                .map(|a| {
                    Ok(ProvAtom::new(
                        DatasetId(dec_u64(elem(a, 0)?)?),
                        dec_u64(elem(a, 1)?)?,
                    ))
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(Row::new(values, Provenance::from_atoms(atoms)))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let rel = Relation::from_rows(name, schema, rows)
        .map_err(|e| WireError::new(format!("bad snapshot relation: {e}")))?;
    Ok(match source {
        // `with_source_raw` keeps the recorded provenance verbatim;
        // `with_source` would re-stamp it and lose mashup lineage.
        Some(id) => rel.with_source_raw(DatasetId(id)),
        None => rel,
    })
}

// ---------------------------------------------------------------------
// Substrate: catalog, lineage, ledger, licensing terms.
// ---------------------------------------------------------------------

fn enc_substrate(s: &SubstrateImage) -> Json {
    Json::obj([
        ("metadata", enc_metadata(&s.metadata)),
        (
            "lineage",
            Json::Arr(
                s.lineage
                    .iter()
                    .map(|(id, evs)| {
                        Json::Arr(vec![
                            enc_u64(id.0),
                            Json::Arr(
                                evs.iter()
                                    .map(|(seq, e)| {
                                        Json::Arr(vec![enc_u64(*seq), enc_lineage_event(e)])
                                    })
                                    .collect(),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("lineage_seq", enc_u64(s.lineage_seq)),
        ("ledger", enc_ledger(&s.ledger)),
        (
            "reserves",
            Json::Arr(
                s.reserves
                    .iter()
                    .map(|(id, p)| Json::Arr(vec![enc_u64(id.0), enc_f64(*p)]))
                    .collect(),
            ),
        ),
        (
            "licenses",
            Json::Arr(
                s.licenses
                    .iter()
                    .map(|(id, lic)| Json::Arr(vec![enc_u64(id.0), enc_license(lic)]))
                    .collect(),
            ),
        ),
        (
            "ci_policies",
            Json::Arr(
                s.ci_policies
                    .iter()
                    .map(|(id, p)| Json::Arr(vec![enc_u64(id.0), enc_ci_policy(p)]))
                    .collect(),
            ),
        ),
        (
            "holds",
            Json::Arr(
                s.exclusive_holds
                    .iter()
                    .map(|(id, buyer, until)| {
                        Json::Arr(vec![enc_u64(id.0), Json::str(buyer), enc_u64(*until)])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn dec_substrate(j: &Json) -> Result<SubstrateImage, WireError> {
    Ok(SubstrateImage {
        metadata: dec_metadata(field(j, "metadata")?)?,
        lineage: arr(field(j, "lineage")?)?
            .iter()
            .map(|entry| {
                let id = DatasetId(dec_u64(elem(entry, 0)?)?);
                let evs = arr(elem(entry, 1)?)?
                    .iter()
                    .map(|ev| Ok((dec_u64(elem(ev, 0)?)?, dec_lineage_event(elem(ev, 1)?)?)))
                    .collect::<Result<Vec<_>, WireError>>()?;
                Ok((id, evs))
            })
            .collect::<Result<Vec<_>, WireError>>()?,
        lineage_seq: dec_u64(field(j, "lineage_seq")?)?,
        ledger: dec_ledger(field(j, "ledger")?)?,
        reserves: arr(field(j, "reserves")?)?
            .iter()
            .map(|r| Ok((DatasetId(dec_u64(elem(r, 0)?)?), dec_f64(elem(r, 1)?)?)))
            .collect::<Result<Vec<_>, WireError>>()?,
        licenses: arr(field(j, "licenses")?)?
            .iter()
            .map(|l| Ok((DatasetId(dec_u64(elem(l, 0)?)?), dec_license(elem(l, 1)?)?)))
            .collect::<Result<Vec<_>, WireError>>()?,
        ci_policies: arr(field(j, "ci_policies")?)?
            .iter()
            .map(|p| {
                Ok((
                    DatasetId(dec_u64(elem(p, 0)?)?),
                    dec_ci_policy(elem(p, 1)?)?,
                ))
            })
            .collect::<Result<Vec<_>, WireError>>()?,
        exclusive_holds: arr(field(j, "holds")?)?
            .iter()
            .map(|h| {
                Ok((
                    DatasetId(dec_u64(elem(h, 0)?)?),
                    dec_str(elem(h, 1)?)?,
                    dec_u64(elem(h, 2)?)?,
                ))
            })
            .collect::<Result<Vec<_>, WireError>>()?,
    })
}

fn enc_metadata(m: &MetadataImage) -> Json {
    Json::obj([
        (
            "entries",
            Json::Arr(
                m.entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("id", enc_u64(e.id.0)),
                            ("name", Json::str(&e.name)),
                            ("owner", Json::str(&e.owner)),
                            ("relation", enc_relation(&e.relation)),
                            ("version", enc_u32(e.version)),
                            ("registered_at", enc_u64(e.registered_at)),
                            ("snapshot_at", enc_u64(e.snapshot_at)),
                            ("tags", enc_str_vec(&e.tags)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("next_id", enc_u64(m.next_id)),
        ("clock", enc_u64(m.clock)),
    ])
}

fn dec_metadata(j: &Json) -> Result<MetadataImage, WireError> {
    Ok(MetadataImage {
        entries: arr(field(j, "entries")?)?
            .iter()
            .map(|e| {
                Ok(DatasetEntryImage {
                    id: DatasetId(dec_u64(field(e, "id")?)?),
                    name: dec_str(field(e, "name")?)?,
                    owner: dec_str(field(e, "owner")?)?,
                    relation: dec_relation(field(e, "relation")?)?,
                    version: dec_u32(field(e, "version")?)?,
                    registered_at: dec_u64(field(e, "registered_at")?)?,
                    snapshot_at: dec_u64(field(e, "snapshot_at")?)?,
                    tags: dec_str_vec(field(e, "tags")?)?,
                })
            })
            .collect::<Result<Vec<_>, WireError>>()?,
        next_id: dec_u64(field(j, "next_id")?)?,
        clock: dec_u64(field(j, "clock")?)?,
    })
}

fn enc_ledger(l: &dmp_core::arbiter::ledger::LedgerImage) -> Json {
    Json::obj([
        (
            "accounts",
            Json::Arr(
                l.accounts
                    .iter()
                    .map(|(name, micros)| Json::Arr(vec![Json::str(name), enc_i64(*micros)]))
                    .collect(),
            ),
        ),
        (
            "escrows",
            Json::Arr(
                l.escrows
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("id", enc_u64(e.id)),
                            ("from", Json::str(&e.from)),
                            ("rem", enc_i64(e.remaining_micros)),
                            ("held", Json::Bool(e.held)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("next_escrow", enc_u64(l.next_escrow)),
    ])
}

fn dec_ledger(j: &Json) -> Result<dmp_core::arbiter::ledger::LedgerImage, WireError> {
    Ok(dmp_core::arbiter::ledger::LedgerImage {
        accounts: arr(field(j, "accounts")?)?
            .iter()
            .map(|a| Ok((dec_str(elem(a, 0)?)?, dec_i64(elem(a, 1)?)?)))
            .collect::<Result<Vec<_>, WireError>>()?,
        escrows: arr(field(j, "escrows")?)?
            .iter()
            .map(|e| {
                Ok(dmp_core::arbiter::ledger::EscrowImage {
                    id: dec_u64(field(e, "id")?)?,
                    from: dec_str(field(e, "from")?)?,
                    remaining_micros: dec_i64(field(e, "rem")?)?,
                    held: dec_bool(field(e, "held")?)?,
                })
            })
            .collect::<Result<Vec<_>, WireError>>()?,
        next_escrow: dec_u64(field(j, "next_escrow")?)?,
    })
}

fn enc_lineage_event(e: &LineageEvent) -> Json {
    match e {
        LineageEvent::UsedInMashup {
            mashup,
            rows_contributed,
        } => Json::obj([
            ("k", Json::str("used")),
            ("mashup", Json::str(mashup)),
            ("rows", enc_usize(*rows_contributed)),
        ]),
        LineageEvent::SoldInMashup { mashup, revenue } => Json::obj([
            ("k", Json::str("sold")),
            ("mashup", Json::str(mashup)),
            ("revenue", enc_f64(*revenue)),
        ]),
        LineageEvent::Updated { version } => {
            Json::obj([("k", Json::str("upd")), ("version", enc_u32(*version))])
        }
        LineageEvent::PrivateRelease { epsilon } => {
            Json::obj([("k", Json::str("priv")), ("epsilon", enc_f64(*epsilon))])
        }
    }
}

fn dec_lineage_event(j: &Json) -> Result<LineageEvent, WireError> {
    match kind(j)? {
        "used" => Ok(LineageEvent::UsedInMashup {
            mashup: dec_str(field(j, "mashup")?)?,
            rows_contributed: dec_usize(field(j, "rows")?)?,
        }),
        "sold" => Ok(LineageEvent::SoldInMashup {
            mashup: dec_str(field(j, "mashup")?)?,
            revenue: dec_f64(field(j, "revenue")?)?,
        }),
        "upd" => Ok(LineageEvent::Updated {
            version: dec_u32(field(j, "version")?)?,
        }),
        "priv" => Ok(LineageEvent::PrivateRelease {
            epsilon: dec_f64(field(j, "epsilon")?)?,
        }),
        _ => Err(WireError::new("unknown lineage event tag")),
    }
}

fn enc_license(l: &License) -> Json {
    match l {
        License::Standard => Json::obj([("k", Json::str("std"))]),
        License::Exclusive {
            tax_rate,
            hold_rounds,
        } => Json::obj([
            ("k", Json::str("excl")),
            ("tax", enc_f64(*tax_rate)),
            ("rounds", enc_u32(*hold_rounds)),
        ]),
        License::OwnershipTransfer => Json::obj([("k", Json::str("own"))]),
        License::NonTransferable => Json::obj([("k", Json::str("nt"))]),
    }
}

fn dec_license(j: &Json) -> Result<License, WireError> {
    match kind(j)? {
        "std" => Ok(License::Standard),
        "excl" => Ok(License::Exclusive {
            tax_rate: dec_f64(field(j, "tax")?)?,
            hold_rounds: dec_u32(field(j, "rounds")?)?,
        }),
        "own" => Ok(License::OwnershipTransfer),
        "nt" => Ok(License::NonTransferable),
        _ => Err(WireError::new("unknown license tag")),
    }
}

fn enc_ci_policy(p: &ContextualIntegrityPolicy) -> Json {
    Json::obj([
        ("context", Json::str(&p.context)),
        ("roles", enc_str_vec(&p.allowed_roles)),
        ("forbidden", enc_str_vec(&p.forbidden_purposes)),
    ])
}

fn dec_ci_policy(j: &Json) -> Result<ContextualIntegrityPolicy, WireError> {
    Ok(ContextualIntegrityPolicy {
        context: dec_str(field(j, "context")?)?,
        allowed_roles: dec_str_vec(field(j, "roles")?)?,
        forbidden_purposes: dec_str_vec(field(j, "forbidden")?)?,
    })
}

// ---------------------------------------------------------------------
// Shard-private market state.
// ---------------------------------------------------------------------

fn enc_shard(s: &MarketShardState) -> Json {
    let [r0, r1, r2, r3] = s.rng;
    Json::obj([
        ("clock", enc_u64(s.clock)),
        ("round", enc_u64(s.round)),
        ("next_offer", enc_u64(s.next_offer)),
        ("next_tx", enc_u64(s.next_tx)),
        ("next_delivery", enc_u64(s.next_delivery)),
        (
            "offers",
            Json::Arr(s.offers.iter().map(enc_offer).collect()),
        ),
        (
            "txs",
            Json::Arr(s.transactions.iter().map(enc_tx).collect()),
        ),
        (
            "deliveries",
            Json::Arr(s.deliveries.iter().map(enc_delivery).collect()),
        ),
        (
            "purchases",
            Json::Arr(s.purchases.iter().map(enc_purchase).collect()),
        ),
        (
            "participants",
            Json::Arr(s.participants.iter().map(enc_participant).collect()),
        ),
        (
            "missing",
            Json::Arr(s.last_missing.iter().map(|m| enc_str_vec(m)).collect()),
        ),
        (
            "negotiations",
            Json::Arr(s.last_negotiations.iter().map(enc_negotiation).collect()),
        ),
        (
            "rng",
            Json::Arr(vec![enc_u64(r0), enc_u64(r1), enc_u64(r2), enc_u64(r3)]),
        ),
        (
            "audit",
            Json::Arr(s.audit_events.iter().map(enc_audit_event).collect()),
        ),
        (
            "disputes",
            Json::Arr(s.disputes.iter().map(enc_dispute).collect()),
        ),
    ])
}

fn dec_shard(j: &Json) -> Result<MarketShardState, WireError> {
    Ok(MarketShardState {
        clock: dec_u64(field(j, "clock")?)?,
        round: dec_u64(field(j, "round")?)?,
        next_offer: dec_u64(field(j, "next_offer")?)?,
        next_tx: dec_u64(field(j, "next_tx")?)?,
        next_delivery: dec_u64(field(j, "next_delivery")?)?,
        offers: arr(field(j, "offers")?)?
            .iter()
            .map(dec_offer)
            .collect::<Result<Vec<_>, _>>()?,
        transactions: arr(field(j, "txs")?)?
            .iter()
            .map(dec_tx)
            .collect::<Result<Vec<_>, _>>()?,
        deliveries: arr(field(j, "deliveries")?)?
            .iter()
            .map(dec_delivery)
            .collect::<Result<Vec<_>, _>>()?,
        purchases: arr(field(j, "purchases")?)?
            .iter()
            .map(dec_purchase)
            .collect::<Result<Vec<_>, _>>()?,
        participants: arr(field(j, "participants")?)?
            .iter()
            .map(dec_participant)
            .collect::<Result<Vec<_>, _>>()?,
        last_missing: arr(field(j, "missing")?)?
            .iter()
            .map(dec_str_vec)
            .collect::<Result<Vec<_>, _>>()?,
        last_negotiations: arr(field(j, "negotiations")?)?
            .iter()
            .map(dec_negotiation)
            .collect::<Result<Vec<_>, _>>()?,
        rng: dec_rng(field(j, "rng")?)?,
        audit_events: arr(field(j, "audit")?)?
            .iter()
            .map(dec_audit_event)
            .collect::<Result<Vec<_>, _>>()?,
        disputes: arr(field(j, "disputes")?)?
            .iter()
            .map(dec_dispute)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn enc_offer(o: &Offer) -> Json {
    let state = match &o.state {
        OfferState::Pending => Json::obj([("k", Json::str("pending"))]),
        OfferState::Fulfilled { tx } => {
            Json::obj([("k", Json::str("fulfilled")), ("tx", enc_u64(*tx))])
        }
        OfferState::AwaitingReport { delivery } => {
            Json::obj([("k", Json::str("await")), ("delivery", enc_u64(*delivery))])
        }
        OfferState::Expired => Json::obj([("k", Json::str("expired"))]),
    };
    Json::obj([
        ("id", enc_u64(o.id)),
        ("wtp", enc_wtp(&o.wtp)),
        ("purpose", Json::str(&o.purpose)),
        ("submitted_at", enc_u64(o.submitted_at)),
        ("state", state),
    ])
}

fn dec_offer(j: &Json) -> Result<Offer, WireError> {
    let state_j = field(j, "state")?;
    let state = match kind(state_j)? {
        "pending" => OfferState::Pending,
        "fulfilled" => OfferState::Fulfilled {
            tx: dec_u64(field(state_j, "tx")?)?,
        },
        "await" => OfferState::AwaitingReport {
            delivery: dec_u64(field(state_j, "delivery")?)?,
        },
        "expired" => OfferState::Expired,
        _ => return Err(WireError::new("unknown offer state tag")),
    };
    Ok(Offer {
        id: dec_u64(field(j, "id")?)?,
        wtp: dec_wtp(field(j, "wtp")?)?,
        purpose: dec_str(field(j, "purpose")?)?,
        submitted_at: dec_u64(field(j, "submitted_at")?)?,
        state,
    })
}

fn enc_wtp(w: &WtpFunction) -> Json {
    let task = match &w.task {
        TaskKind::Classification { label } => {
            Json::obj([("k", Json::str("cls")), ("label", Json::str(label))])
        }
        TaskKind::Regression { target } => {
            Json::obj([("k", Json::str("reg")), ("target", Json::str(target))])
        }
        TaskKind::AggregateCompleteness {
            group_by,
            expected_groups,
        } => Json::obj([
            ("k", Json::str("agg")),
            ("group_by", Json::str(group_by)),
            ("expected", enc_usize(*expected_groups)),
        ]),
        TaskKind::AttributeCoverage => Json::obj([("k", Json::str("cov"))]),
    };
    let curve = match &w.curve {
        PriceCurve::Step(steps) => Json::obj([
            ("k", Json::str("step")),
            (
                "steps",
                Json::Arr(
                    steps
                        .iter()
                        .map(|(t, p)| Json::Arr(vec![enc_f64(*t), enc_f64(*p)]))
                        .collect(),
                ),
            ),
        ]),
        PriceCurve::Linear {
            min_satisfaction,
            max_price,
        } => Json::obj([
            ("k", Json::str("lin")),
            ("min", enc_f64(*min_satisfaction)),
            ("max", enc_f64(*max_price)),
        ]),
        PriceCurve::Constant(p) => Json::obj([("k", Json::str("const")), ("p", enc_f64(*p))]),
    };
    let con = &w.constraints;
    Json::obj([
        ("buyer", Json::str(&w.buyer)),
        ("attributes", enc_str_vec(&w.attributes)),
        ("keywords", enc_str_vec(&w.keywords)),
        ("task", task),
        ("curve", curve),
        (
            "constraints",
            Json::obj([
                ("max_age", enc_opt(&con.max_age, |v| enc_u64(*v))),
                ("expires_at", enc_opt(&con.expires_at, |v| enc_u64(*v))),
                ("authors", enc_str_vec(&con.authors)),
                ("require_provenance", Json::Bool(con.require_provenance)),
                (
                    "max_missing",
                    enc_opt(&con.max_missing_ratio, |v| enc_f64(*v)),
                ),
            ]),
        ),
        ("owned", enc_opt(&w.owned_data, enc_relation)),
        ("min_rows", enc_usize(w.min_rows)),
    ])
}

fn dec_wtp(j: &Json) -> Result<WtpFunction, WireError> {
    let task_j = field(j, "task")?;
    let task = match kind(task_j)? {
        "cls" => TaskKind::Classification {
            label: dec_str(field(task_j, "label")?)?,
        },
        "reg" => TaskKind::Regression {
            target: dec_str(field(task_j, "target")?)?,
        },
        "agg" => TaskKind::AggregateCompleteness {
            group_by: dec_str(field(task_j, "group_by")?)?,
            expected_groups: dec_usize(field(task_j, "expected")?)?,
        },
        "cov" => TaskKind::AttributeCoverage,
        _ => return Err(WireError::new("unknown task tag")),
    };
    let curve_j = field(j, "curve")?;
    let curve = match kind(curve_j)? {
        "step" => PriceCurve::Step(
            arr(field(curve_j, "steps")?)?
                .iter()
                .map(|s| Ok((dec_f64(elem(s, 0)?)?, dec_f64(elem(s, 1)?)?)))
                .collect::<Result<Vec<_>, WireError>>()?,
        ),
        "lin" => PriceCurve::Linear {
            min_satisfaction: dec_f64(field(curve_j, "min")?)?,
            max_price: dec_f64(field(curve_j, "max")?)?,
        },
        "const" => PriceCurve::Constant(dec_f64(field(curve_j, "p")?)?),
        _ => return Err(WireError::new("unknown curve tag")),
    };
    let con_j = field(j, "constraints")?;
    Ok(WtpFunction {
        buyer: dec_str(field(j, "buyer")?)?,
        attributes: dec_str_vec(field(j, "attributes")?)?,
        keywords: dec_str_vec(field(j, "keywords")?)?,
        task,
        curve,
        constraints: IntrinsicConstraints {
            max_age: dec_opt(field(con_j, "max_age")?, dec_u64)?,
            expires_at: dec_opt(field(con_j, "expires_at")?, dec_u64)?,
            authors: dec_str_vec(field(con_j, "authors")?)?,
            require_provenance: dec_bool(field(con_j, "require_provenance")?)?,
            max_missing_ratio: dec_opt(field(con_j, "max_missing")?, dec_f64)?,
        },
        owned_data: dec_opt(field(j, "owned")?, dec_relation)?,
        min_rows: dec_usize(field(j, "min_rows")?)?,
    })
}

fn enc_tx(t: &TransactionRecord) -> Json {
    Json::obj([
        ("id", enc_u64(t.id)),
        ("offer_id", enc_u64(t.offer_id)),
        ("buyer", Json::str(&t.buyer)),
        ("price", enc_f64(t.price)),
        ("fee", enc_f64(t.fee)),
        ("satisfaction", enc_f64(t.satisfaction)),
        ("datasets", enc_dataset_vec(&t.datasets)),
        (
            "shares",
            Json::Arr(
                t.shares
                    .iter()
                    .map(|s| Json::Arr(vec![enc_u64(s.dataset.0), enc_f64(s.amount)]))
                    .collect(),
            ),
        ),
        ("round", enc_u64(t.round)),
    ])
}

fn dec_tx(j: &Json) -> Result<TransactionRecord, WireError> {
    Ok(TransactionRecord {
        id: dec_u64(field(j, "id")?)?,
        offer_id: dec_u64(field(j, "offer_id")?)?,
        buyer: dec_str(field(j, "buyer")?)?,
        price: dec_f64(field(j, "price")?)?,
        fee: dec_f64(field(j, "fee")?)?,
        satisfaction: dec_f64(field(j, "satisfaction")?)?,
        datasets: dec_dataset_vec(field(j, "datasets")?)?,
        shares: arr(field(j, "shares")?)?
            .iter()
            .map(|s| {
                Ok(DatasetShare {
                    dataset: DatasetId(dec_u64(elem(s, 0)?)?),
                    amount: dec_f64(elem(s, 1)?)?,
                })
            })
            .collect::<Result<Vec<_>, WireError>>()?,
        round: dec_u64(field(j, "round")?)?,
    })
}

fn enc_delivery(d: &Delivery) -> Json {
    Json::obj([
        ("id", enc_u64(d.id)),
        ("offer_id", enc_u64(d.offer_id)),
        ("buyer", Json::str(&d.buyer)),
        ("relation", enc_relation(&d.relation)),
        ("satisfaction", enc_f64(d.satisfaction)),
        ("escrow", enc_u64(d.escrow)),
        ("datasets", enc_dataset_vec(&d.datasets)),
        (
            "settlement",
            enc_opt(&d.settlement, |s| {
                Json::obj([
                    ("paid", enc_f64(s.paid)),
                    ("penalty", enc_f64(s.penalty)),
                    ("audited", Json::Bool(s.audited)),
                ])
            }),
        ),
    ])
}

fn dec_delivery(j: &Json) -> Result<Delivery, WireError> {
    Ok(Delivery {
        id: dec_u64(field(j, "id")?)?,
        offer_id: dec_u64(field(j, "offer_id")?)?,
        buyer: dec_str(field(j, "buyer")?)?,
        relation: dec_relation(field(j, "relation")?)?,
        satisfaction: dec_f64(field(j, "satisfaction")?)?,
        escrow: dec_u64(field(j, "escrow")?)?,
        datasets: dec_dataset_vec(field(j, "datasets")?)?,
        settlement: dec_opt(field(j, "settlement")?, |s| {
            Ok(Settlement {
                paid: dec_f64(field(s, "paid")?)?,
                penalty: dec_f64(field(s, "penalty")?)?,
                audited: dec_bool(field(s, "audited")?)?,
            })
        })?,
    })
}

fn enc_purchase(p: &Purchase) -> Json {
    Json::obj([
        ("buyer", Json::str(&p.buyer)),
        ("datasets", enc_dataset_vec(&p.datasets)),
    ])
}

fn dec_purchase(j: &Json) -> Result<Purchase, WireError> {
    Ok(Purchase {
        buyer: dec_str(field(j, "buyer")?)?,
        datasets: dec_dataset_vec(field(j, "datasets")?)?,
    })
}

fn enc_participant(p: &Participant) -> Json {
    Json::obj([
        ("name", Json::str(&p.name)),
        ("role", Json::str(&p.role)),
        ("reputation", enc_f64(p.reputation)),
        ("excluded_until", enc_u64(p.excluded_until)),
    ])
}

fn dec_participant(j: &Json) -> Result<Participant, WireError> {
    Ok(Participant {
        name: dec_str(field(j, "name")?)?,
        role: dec_str(field(j, "role")?)?,
        reputation: dec_f64(field(j, "reputation")?)?,
        excluded_until: dec_u64(field(j, "excluded_until")?)?,
    })
}

pub(crate) fn enc_negotiation(n: &NegotiationRequest) -> Json {
    Json::obj([
        ("offer_id", enc_u64(n.offer_id)),
        ("buyer", Json::str(&n.buyer)),
        ("missing", enc_str_vec(&n.missing)),
        ("sellers", enc_str_vec(&n.candidate_sellers)),
    ])
}

pub(crate) fn dec_negotiation(j: &Json) -> Result<NegotiationRequest, WireError> {
    Ok(NegotiationRequest {
        offer_id: dec_u64(field(j, "offer_id")?)?,
        buyer: dec_str(field(j, "buyer")?)?,
        missing: dec_str_vec(field(j, "missing")?)?,
        candidate_sellers: dec_str_vec(field(j, "sellers")?)?,
    })
}

pub(crate) fn enc_audit_event(e: &AuditEvent) -> Json {
    match e {
        AuditEvent::DatasetRegistered { dataset, seller } => Json::obj([
            ("k", Json::str("reg")),
            ("dataset", enc_u64(dataset.0)),
            ("seller", Json::str(seller)),
        ]),
        AuditEvent::WtpSubmitted { offer, buyer } => Json::obj([
            ("k", Json::str("wtp")),
            ("offer", enc_u64(*offer)),
            ("buyer", Json::str(buyer)),
        ]),
        AuditEvent::MashupBuilt { offer, datasets } => Json::obj([
            ("k", Json::str("mash")),
            ("offer", enc_u64(*offer)),
            ("datasets", enc_dataset_vec(datasets)),
        ]),
        AuditEvent::TransactionSettled { tx, buyer, price } => Json::obj([
            ("k", Json::str("settle")),
            ("tx", enc_u64(*tx)),
            ("buyer", Json::str(buyer)),
            ("price", enc_f64(*price)),
        ]),
        AuditEvent::PrivacyRelease { dataset, epsilon } => Json::obj([
            ("k", Json::str("priv")),
            ("dataset", enc_u64(dataset.0)),
            ("epsilon", enc_f64(*epsilon)),
        ]),
        AuditEvent::ExPostAudit {
            delivery,
            underreported,
        } => Json::obj([
            ("k", Json::str("expost")),
            ("delivery", enc_u64(*delivery)),
            ("under", Json::Bool(*underreported)),
        ]),
        AuditEvent::Dispute { dispute, note } => Json::obj([
            ("k", Json::str("disp")),
            ("dispute", enc_u64(*dispute)),
            ("note", Json::str(note)),
        ]),
    }
}

pub(crate) fn dec_audit_event(j: &Json) -> Result<AuditEvent, WireError> {
    match kind(j)? {
        "reg" => Ok(AuditEvent::DatasetRegistered {
            dataset: DatasetId(dec_u64(field(j, "dataset")?)?),
            seller: dec_str(field(j, "seller")?)?,
        }),
        "wtp" => Ok(AuditEvent::WtpSubmitted {
            offer: dec_u64(field(j, "offer")?)?,
            buyer: dec_str(field(j, "buyer")?)?,
        }),
        "mash" => Ok(AuditEvent::MashupBuilt {
            offer: dec_u64(field(j, "offer")?)?,
            datasets: dec_dataset_vec(field(j, "datasets")?)?,
        }),
        "settle" => Ok(AuditEvent::TransactionSettled {
            tx: dec_u64(field(j, "tx")?)?,
            buyer: dec_str(field(j, "buyer")?)?,
            price: dec_f64(field(j, "price")?)?,
        }),
        "priv" => Ok(AuditEvent::PrivacyRelease {
            dataset: DatasetId(dec_u64(field(j, "dataset")?)?),
            epsilon: dec_f64(field(j, "epsilon")?)?,
        }),
        "expost" => Ok(AuditEvent::ExPostAudit {
            delivery: dec_u64(field(j, "delivery")?)?,
            underreported: dec_bool(field(j, "under")?)?,
        }),
        "disp" => Ok(AuditEvent::Dispute {
            dispute: dec_u64(field(j, "dispute")?)?,
            note: dec_str(field(j, "note")?)?,
        }),
        _ => Err(WireError::new("unknown audit event tag")),
    }
}

fn enc_dispute(d: &Dispute) -> Json {
    let state = match &d.state {
        DisputeState::Open => Json::obj([("k", Json::str("open"))]),
        DisputeState::Resolved { refund } => {
            Json::obj([("k", Json::str("res")), ("refund", enc_f64(*refund))])
        }
    };
    Json::obj([
        ("id", enc_u64(d.id)),
        ("complainant", Json::str(&d.complainant)),
        ("tx", enc_u64(d.tx)),
        ("reason", Json::str(&d.reason)),
        ("state", state),
    ])
}

fn dec_dispute(j: &Json) -> Result<Dispute, WireError> {
    let state_j = field(j, "state")?;
    let state = match kind(state_j)? {
        "open" => DisputeState::Open,
        "res" => DisputeState::Resolved {
            refund: dec_f64(field(state_j, "refund")?)?,
        },
        _ => return Err(WireError::new("unknown dispute state tag")),
    };
    Ok(Dispute {
        id: dec_u64(field(j, "id")?)?,
        complainant: dec_str(field(j, "complainant")?)?,
        tx: dec_u64(field(j, "tx")?)?,
        reason: dec_str(field(j, "reason")?)?,
        state,
    })
}
