//! Materialized state snapshots (format v2) for O(state) recovery.
//!
//! A snapshot is the shard router's *serialized state* — catalog,
//! ledger, offer book, licenses, trust records, RNG streams — encoded
//! by `state.rs` and re-framed with the journal's CRC records, plus a
//! header carrying the expected state digest. Recovery = load the
//! newest intact snapshot, decode and restore it into a fresh router,
//! verify the digest *proves* the decoded state is equivalent, then
//! replay only the journal tail (`seq > snapshot.seq`). Restore cost is
//! O(live state), not O(history): a node that ran a million rounds
//! recovers as fast as one that ran forty. A torn or digest-mismatched
//! snapshot is simply ignored: the journal remains the source of truth.
//!
//! Format v2 frames: `header, substrate, shard × N, router`. The v1
//! format (a command-prefix checkpoint) is *not* readable by this
//! module; the node's `node.meta` fingerprint was bumped alongside the
//! format change so v1 directories are refused at open, never misread.
//!
//! Files are written atomically (`.tmp` + fsync + rename + directory
//! fsync), named `snapshot-<seq>.dmp` so the newest sorts last. Stale
//! `.tmp` files (a crash between create and rename) are swept at node
//! open; superseded snapshots are pruned under the node's retention
//! knob once a newer snapshot is verified durable.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::journal::{frame, scan_frames};
use crate::state::StateImage;
use crate::wire::Json;

/// An in-memory snapshot: materialized state + expected digest.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Sequence number of the last command folded into the state.
    pub seq: u64,
    /// FNV-1a digest the restored router state must reproduce.
    pub digest: u64,
    /// The encoded router state (substrate, shards, router allocators).
    pub state: StateImage,
}

/// On-disk format version. v1 (command-prefix checkpoints) is refused.
const FORMAT_VERSION: &str = "2";

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:020}.dmp"))
}

/// Parse the sequence number out of a `snapshot-<seq>.dmp` file name.
fn seq_of(path: &Path) -> Option<u64> {
    path.file_name()
        .and_then(|n| n.to_str())
        .and_then(|n| n.strip_prefix("snapshot-"))
        .and_then(|n| n.strip_suffix(".dmp"))
        .and_then(|n| n.parse::<u64>().ok())
}

/// Write `snapshot` atomically into `dir`; returns the final path.
pub fn write_snapshot(dir: &Path, snapshot: &Snapshot) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let mut buf = Vec::new();
    let header = Json::obj([
        ("version", Json::str(FORMAT_VERSION)),
        // u64 seq and digest exceed f64's exact-integer range: strings.
        ("seq", Json::str(snapshot.seq.to_string())),
        ("digest", Json::str(format!("{:016x}", snapshot.digest))),
        ("shards", Json::str(snapshot.state.shards.len().to_string())),
    ])
    .dump();
    frame(header.as_bytes(), &mut buf);
    frame(snapshot.state.substrate.dump().as_bytes(), &mut buf);
    for shard in &snapshot.state.shards {
        frame(shard.dump().as_bytes(), &mut buf);
    }
    frame(snapshot.state.router.dump().as_bytes(), &mut buf);

    let final_path = snapshot_path(dir, snapshot.seq);
    let tmp_path = final_path.with_extension("tmp");
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Persist the rename itself (directory entry). A failed directory
    // fsync means the snapshot may *vanish* on power loss even though
    // the data blocks are safe — swallowing that error would let the
    // caller report a durability point that does not exist. Propagate
    // it; the node logs the failure and keeps running on the journal,
    // and recovery falls back to the previous intact snapshot. (A
    // directory that cannot be *opened* for syncing is a platform
    // limitation, not a write failure — tolerated.)
    if let Ok(d) = File::open(dir) {
        d.sync_all()?;
    }
    Ok(final_path)
}

fn parse_snapshot(bytes: &[u8]) -> Option<Snapshot> {
    let (payloads, valid_len) = scan_frames(bytes);
    if valid_len != bytes.len() || payloads.is_empty() {
        return None; // torn or trailing garbage: not an intact snapshot
    }
    let (first, rest) = payloads.split_first()?;
    let header = Json::parse(std::str::from_utf8(first).ok()?).ok()?;
    if header.req_str("version").ok()? != FORMAT_VERSION {
        return None;
    }
    let seq = header.req_str("seq").ok()?.parse::<u64>().ok()?;
    let digest = u64::from_str_radix(header.req_str("digest").ok()?.as_str(), 16).ok()?;
    let shards = header.req_str("shards").ok()?.parse::<usize>().ok()?;
    // header + substrate + shards + router.
    if rest.len() != shards + 2 {
        return None;
    }
    let mut trees = rest
        .iter()
        .map(|payload| Json::parse(std::str::from_utf8(payload).ok()?).ok())
        .collect::<Option<Vec<Json>>>()?;
    let router = trees.pop()?;
    let mut trees = trees.into_iter();
    let substrate = trees.next()?;
    Some(Snapshot {
        seq,
        digest,
        state: StateImage {
            substrate,
            shards: trees.collect(),
            router,
        },
    })
}

/// Parse one snapshot file; `None` if missing, torn, or unparseable.
pub fn load_file(path: &Path) -> Option<Snapshot> {
    parse_snapshot(&fs::read(path).ok()?)
}

/// All snapshot files in `dir`, sorted by sequence number ascending.
pub fn list_snapshots(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out: Vec<(u64, PathBuf)> = fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| {
            let path = e.path();
            seq_of(&path).map(|seq| (seq, path))
        })
        .collect();
    out.sort();
    out
}

/// Load the newest intact snapshot in `dir`, skipping torn or
/// unparseable files (recovery falls back to full journal replay when
/// none survives).
pub fn load_latest(dir: &Path) -> Option<Snapshot> {
    list_snapshots(dir)
        .iter()
        .rev()
        .find_map(|(_, path)| load_file(path))
}

/// Remove stale `snapshot-*.tmp` files — the residue of a crash between
/// tmp-write and rename. Returns how many were removed. Errors listing
/// the directory are reported; errors unlinking a single file are not
/// fatal (the stray tmp is cosmetic, never loaded).
pub fn sweep_tmp(dir: &Path) -> std::io::Result<usize> {
    let mut removed = 0;
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let stale = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("snapshot-") && n.ends_with(".tmp"));
        if stale && fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Delete all but the newest `keep` snapshots (`keep` ≥ 1 is enforced:
/// pruning every snapshot would forfeit accelerated recovery). Returns
/// the removed count.
pub fn prune_snapshots(dir: &Path, keep: usize) -> std::io::Result<usize> {
    let keep = keep.max(1);
    let all = list_snapshots(dir);
    let excess = all.len().saturating_sub(keep);
    let mut removed = 0;
    for (_, path) in all.iter().take(excess) {
        fs::remove_file(path)?;
        removed += 1;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmp-snapshot-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Snapshot {
        Snapshot {
            seq: 17,
            digest: 0xdead_beef_cafe_f00d,
            state: StateImage {
                substrate: Json::obj([("ledger", Json::str("..."))]),
                shards: vec![
                    Json::obj([("clock", Json::str("4"))]),
                    Json::obj([("clock", Json::str("9"))]),
                ],
                router: Json::obj([("rounds", Json::str("2"))]),
            },
        }
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = tmp("roundtrip");
        write_snapshot(&dir, &sample()).unwrap();
        assert_eq!(load_latest(&dir).unwrap(), sample());
    }

    #[test]
    fn newest_intact_snapshot_wins() {
        let dir = tmp("newest");
        let old = Snapshot { seq: 3, ..sample() };
        write_snapshot(&dir, &old).unwrap();
        write_snapshot(&dir, &sample()).unwrap();
        assert_eq!(load_latest(&dir).unwrap().seq, 17);
    }

    #[test]
    fn torn_snapshot_is_skipped() {
        let dir = tmp("torn");
        let old = Snapshot { seq: 3, ..sample() };
        write_snapshot(&dir, &old).unwrap();
        let newest = write_snapshot(&dir, &sample()).unwrap();
        // Chop bytes off the newest: loader must fall back to seq 3.
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() - 5]).unwrap();
        assert_eq!(load_latest(&dir).unwrap().seq, 3);
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = tmp("empty");
        assert!(load_latest(&dir).is_none());
    }

    #[test]
    fn v1_command_prefix_snapshots_are_refused() {
        // A v1 file (numeric version header framing a command prefix)
        // must parse as "no snapshot", never as garbage state.
        let dir = tmp("v1");
        let mut buf = Vec::new();
        let header = r#"{"version":1,"seq":17,"digest":"deadbeefcafef00d","count":0}"#;
        frame(header.as_bytes(), &mut buf);
        fs::write(snapshot_path(&dir, 17), &buf).unwrap();
        assert!(load_latest(&dir).is_none());
    }

    #[test]
    fn write_failure_is_propagated_not_swallowed() {
        // A regular file where the snapshot directory should be: every
        // path of write_snapshot (create_dir_all onward) must surface
        // the error to the caller instead of reporting a phantom
        // durability point.
        let dir = tmp("as-file");
        let not_a_dir = dir.join("occupied");
        fs::write(&not_a_dir, b"file, not dir").unwrap();
        assert!(write_snapshot(&not_a_dir, &sample()).is_err());
    }

    #[test]
    fn lost_newest_snapshot_falls_back_to_previous() {
        // The failure mode an undurable rename leaves behind after a
        // crash: the newest snapshot file simply is not there. Recovery
        // must fall back to the previous intact snapshot.
        let dir = tmp("lost");
        let old = Snapshot { seq: 3, ..sample() };
        write_snapshot(&dir, &old).unwrap();
        let newest = write_snapshot(&dir, &sample()).unwrap();
        fs::remove_file(&newest).unwrap();
        assert_eq!(load_latest(&dir).unwrap().seq, 3);
    }

    #[test]
    fn stale_tmp_files_are_swept() {
        let dir = tmp("sweep");
        write_snapshot(&dir, &sample()).unwrap();
        fs::write(dir.join("snapshot-00000000000000000099.tmp"), b"torn").unwrap();
        fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
        assert_eq!(sweep_tmp(&dir).unwrap(), 1);
        assert!(dir.join("unrelated.txt").exists());
        assert_eq!(load_latest(&dir).unwrap().seq, 17);
    }

    #[test]
    fn prune_keeps_newest_k() {
        let dir = tmp("prune");
        for seq in [3, 9, 17] {
            write_snapshot(&dir, &Snapshot { seq, ..sample() }).unwrap();
        }
        assert_eq!(prune_snapshots(&dir, 2).unwrap(), 1);
        let kept: Vec<u64> = list_snapshots(&dir).iter().map(|(s, _)| *s).collect();
        assert_eq!(kept, vec![9, 17]);
        // keep = 0 is clamped to 1: never prune the last snapshot.
        assert_eq!(prune_snapshots(&dir, 0).unwrap(), 1);
        assert_eq!(load_latest(&dir).unwrap().seq, 17);
    }
}
