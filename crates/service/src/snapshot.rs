//! Periodic snapshots for fast, verified recovery.
//!
//! A snapshot is a *compacted, immutable command checkpoint*: the full
//! command prefix up to a sequence number, re-framed with the journal's
//! CRC records, plus a header carrying the expected post-replay state
//! digest. Because round execution is bit-identical under replay
//! (PR 1), replaying the snapshot's prefix into a fresh shard router
//! reconstructs the exact market state — and the digest *proves* it
//! did, guarding recovery against any nondeterminism creeping into the
//! pipeline. Recovery = load newest intact snapshot, replay its
//! commands, verify the digest, then replay the journal tail
//! (`seq > snapshot.seq`). A torn or digest-mismatched snapshot is
//! simply ignored: the journal remains the source of truth.
//!
//! Files are written atomically (`.tmp` + fsync + rename + directory
//! fsync), named `snapshot-<seq>.dmp` so the newest sorts last.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::command::Command;
use crate::journal::{frame, scan_frames};
use crate::wire::Json;

/// An in-memory snapshot: command prefix + expected state digest.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Sequence number of the last command included.
    pub seq: u64,
    /// FNV-1a digest of the market state after replaying `commands`.
    pub digest: u64,
    /// The full command prefix, in application order.
    pub commands: Vec<Command>,
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:020}.dmp"))
}

/// Write `snapshot` atomically into `dir`; returns the final path.
pub fn write_snapshot(dir: &Path, snapshot: &Snapshot) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let mut buf = Vec::new();
    let header = Json::obj([
        // dmp-lint: allow(det-float) -- format version tag, a small exact integer in f64
        ("version", Json::Num(1.0)),
        // dmp-lint: allow(det-float) -- JSON wire carries seq as f64; recovery re-verifies against the journal digest
        ("seq", Json::Num(snapshot.seq as f64)),
        // u64 digests exceed f64's exact-integer range: hex string.
        ("digest", Json::str(format!("{:016x}", snapshot.digest))),
        // dmp-lint: allow(det-float) -- command count is bounded far below 2^53, exact in f64
        ("count", Json::Num(snapshot.commands.len() as f64)),
    ])
    .dump();
    frame(header.as_bytes(), &mut buf);
    for cmd in &snapshot.commands {
        frame(cmd.encode().dump().as_bytes(), &mut buf);
    }

    let final_path = snapshot_path(dir, snapshot.seq);
    let tmp_path = final_path.with_extension("tmp");
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Persist the rename itself (directory entry). A failed directory
    // fsync means the snapshot may *vanish* on power loss even though
    // the data blocks are safe — swallowing that error would let the
    // caller report a durability point that does not exist. Propagate
    // it; the node logs the failure and keeps running on the journal,
    // and recovery falls back to the previous intact snapshot. (A
    // directory that cannot be *opened* for syncing is a platform
    // limitation, not a write failure — tolerated.)
    if let Ok(d) = File::open(dir) {
        d.sync_all()?;
    }
    Ok(final_path)
}

fn parse_snapshot(bytes: &[u8]) -> Option<Snapshot> {
    let (payloads, valid_len) = scan_frames(bytes);
    if valid_len != bytes.len() || payloads.is_empty() {
        return None; // torn or trailing garbage: not an intact snapshot
    }
    let (first, rest) = payloads.split_first()?;
    let header = Json::parse(std::str::from_utf8(first).ok()?).ok()?;
    if header.req_u64("version").ok()? != 1 {
        return None;
    }
    let seq = header.req_u64("seq").ok()?;
    let digest = u64::from_str_radix(header.req_str("digest").ok()?.as_str(), 16).ok()?;
    let count = header.req_u64("count").ok()? as usize;
    if payloads.len() != count + 1 {
        return None;
    }
    let mut commands = Vec::with_capacity(count);
    for payload in rest {
        let json = Json::parse(std::str::from_utf8(payload).ok()?).ok()?;
        commands.push(Command::decode(&json).ok()?);
    }
    Some(Snapshot {
        seq,
        digest,
        commands,
    })
}

/// Load the newest intact snapshot in `dir`, skipping torn or
/// unparseable files (recovery falls back to full journal replay when
/// none survives).
pub fn load_latest(dir: &Path) -> Option<Snapshot> {
    let mut candidates: Vec<PathBuf> = fs::read_dir(dir)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("snapshot-") && n.ends_with(".dmp"))
                .unwrap_or(false)
        })
        .collect();
    candidates.sort();
    for path in candidates.iter().rev() {
        if let Ok(bytes) = fs::read(path) {
            if let Some(snapshot) = parse_snapshot(&bytes) {
                return Some(snapshot);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmp-snapshot-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Snapshot {
        Snapshot {
            seq: 17,
            digest: 0xdead_beef_cafe_f00d,
            commands: vec![
                Command::Enroll {
                    name: "a".into(),
                    role: "buyer".into(),
                },
                Command::RunRound { rounds: 2 },
            ],
        }
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = tmp("roundtrip");
        write_snapshot(&dir, &sample()).unwrap();
        assert_eq!(load_latest(&dir).unwrap(), sample());
    }

    #[test]
    fn newest_intact_snapshot_wins() {
        let dir = tmp("newest");
        let old = Snapshot { seq: 3, ..sample() };
        write_snapshot(&dir, &old).unwrap();
        write_snapshot(&dir, &sample()).unwrap();
        assert_eq!(load_latest(&dir).unwrap().seq, 17);
    }

    #[test]
    fn torn_snapshot_is_skipped() {
        let dir = tmp("torn");
        let old = Snapshot { seq: 3, ..sample() };
        write_snapshot(&dir, &old).unwrap();
        let newest = write_snapshot(&dir, &sample()).unwrap();
        // Chop bytes off the newest: loader must fall back to seq 3.
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() - 5]).unwrap();
        assert_eq!(load_latest(&dir).unwrap().seq, 3);
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = tmp("empty");
        assert!(load_latest(&dir).is_none());
    }

    #[test]
    fn write_failure_is_propagated_not_swallowed() {
        // A regular file where the snapshot directory should be: every
        // path of write_snapshot (create_dir_all onward) must surface
        // the error to the caller instead of reporting a phantom
        // durability point.
        let dir = tmp("as-file");
        let not_a_dir = dir.join("occupied");
        fs::write(&not_a_dir, b"file, not dir").unwrap();
        assert!(write_snapshot(&not_a_dir, &sample()).is_err());
    }

    #[test]
    fn lost_newest_snapshot_falls_back_to_previous() {
        // The failure mode an undurable rename leaves behind after a
        // crash: the newest snapshot file simply is not there. Recovery
        // must fall back to the previous intact snapshot.
        let dir = tmp("lost");
        let old = Snapshot { seq: 3, ..sample() };
        write_snapshot(&dir, &old).unwrap();
        let newest = write_snapshot(&dir, &sample()).unwrap();
        fs::remove_file(&newest).unwrap();
        assert_eq!(load_latest(&dir).unwrap().seq, 3);
    }
}
