//! The shard-worker side of the distributed exchange: a disposable,
//! in-memory **full replica** of the coordinator's market behind the
//! same evented gateway, serving the internal RPC surface.
//!
//! A worker holds all M shards (one [`ShardRouter`] over one shared
//! substrate) built from the same config flags as the coordinator, and
//! stays bit-identical to it by consuming the coordinator's journal
//! order: every non-round mutation arrives as `/internal/apply`, and
//! every round arrives as the `candidates` / `settle` RPC pair — the
//! worker computes the candidate phase for its *assigned* shards,
//! then re-executes clearing + settlement locally for **all** shards
//! once the coordinator broadcasts the full export set. Nothing here
//! is durable: a dead worker is replaced by provisioning a fresh one
//! from the coordinator's quiesced state (`/internal/restore`).
//!
//! | RPC                      | Body                              | Effect |
//! |--------------------------|-----------------------------------|--------|
//! | `POST /internal/apply`   | `{fp, seq, cmd}`                  | apply one journaled command |
//! | `POST /internal/candidates` | `{fp, round, seed, shards}`    | compute + stash candidate phase, return exports |
//! | `POST /internal/settle`  | `{fp, round, seed, exports}`      | re-execute clear + settlement locally |
//! | `GET /internal/digest`   | —                                 | state digest + round/seq watermarks |
//! | `POST /internal/restore` | `{fp, applied, state}`            | become a fresh replica of the given state |
//!
//! Every RPC carries the deployment's config fingerprint and is
//! **refused** on mismatch (wrong fingerprint, wrong round number, or
//! a round seed the worker's own RNG lockstep would not draw): a
//! diverged replica must fail fast and be re-provisioned, never settle
//! a round from the wrong state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dmp_core::arbiter::pipeline::{CandidatePhaseExport, RoundContext};
use dmp_core::market::MarketConfig;
use parking_lot::Mutex;
use rayon::prelude::*;

use crate::codec;
use crate::command::Command;
use crate::gateway::{err_body, Service};
use crate::http::{Request, Response};
use crate::node::config_fingerprint;
use crate::shard::ShardRouter;
use crate::state::{self, arr, dec_u64, dec_usize, enc_u64, field, StateImage};
use crate::wire::Json;

/// Protocol phase at which a worker kills itself — fault injection for
/// the re-dispatch tests (a scripted stand-in for a crash or OOM at
/// the worst possible instant). Never set in production.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPhase {
    /// Die on receiving a candidate request, before computing anything.
    PreCandidate,
    /// Die on receiving the settle broadcast, before touching state.
    PreSettle,
    /// Die after clearing but before settlement finishes.
    MidSettle,
}

impl KillPhase {
    /// Parse the `--kill-phase` flag spelling.
    pub fn parse(s: &str) -> Option<KillPhase> {
        match s {
            "pre-candidate" => Some(KillPhase::PreCandidate),
            "pre-settle" => Some(KillPhase::PreSettle),
            "mid-settle" => Some(KillPhase::MidSettle),
            _ => None,
        }
    }
}

/// Worker deployment configuration — the same replay-relevant knobs as
/// the coordinator's [`ServiceConfig`](crate::node::ServiceConfig),
/// minus durability (workers have none).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Base market configuration (must match the coordinator's).
    pub market: MarketConfig,
    /// Shard count (must match the coordinator's).
    pub shards: usize,
    /// Fault injection: die at this phase boundary of this round.
    pub kill: Option<(KillPhase, u64)>,
}

impl WorkerConfig {
    /// A worker over `shards` shards of `market`.
    pub fn new(market: MarketConfig, shards: usize) -> Self {
        WorkerConfig {
            market,
            shards: shards.max(1),
            kill: None,
        }
    }

    /// Arm fault injection at a phase boundary of round `round`.
    pub fn with_kill(mut self, phase: KillPhase, round: u64) -> Self {
        self.kill = Some((phase, round));
        self
    }
}

/// Candidate phases computed for a round whose settle broadcast has
/// not arrived yet. Computing the candidate phase advances the shard's
/// clock, round counter, expiry state and audit log, so settle must
/// **reuse** these contexts — re-importing the same shard would
/// double-advance the replica and diverge it. The stashed export makes
/// a repeated candidate request idempotent (served from the stash).
struct PendingRound {
    round: u64,
    seed: u64,
    slots: Vec<Option<(RoundContext, CandidatePhaseExport)>>,
}

/// A worker process's state: one full-replica router plus the pending
/// candidate stash. Implements [`Service`], so `Gateway::serve_service`
/// puts it behind the same reactor + apply pool as the coordinator.
pub struct WorkerNode {
    cfg: WorkerConfig,
    fingerprint: String,
    /// Swapped wholesale by `/internal/restore`; handlers clone the
    /// `Arc` out and never hold this lock across work.
    router: Mutex<Arc<ShardRouter>>,
    pending: Mutex<Option<PendingRound>>,
    /// Coordinator journal watermark this replica has consumed
    /// (observability; the digest is the authoritative equivalence
    /// check).
    applied: AtomicU64,
}

impl WorkerNode {
    /// Build a fresh (genesis-state) replica from config flags.
    pub fn new(cfg: WorkerConfig) -> WorkerNode {
        let fingerprint = config_fingerprint(cfg.shards, &cfg.market);
        let router = Arc::new(ShardRouter::new(&cfg.market, cfg.shards));
        WorkerNode {
            cfg,
            fingerprint,
            router: Mutex::new(router),
            pending: Mutex::new(None),
            applied: AtomicU64::new(0),
        }
    }

    /// The live router (tests and digests).
    pub fn router(&self) -> Arc<ShardRouter> {
        self.router.lock().clone()
    }

    /// This worker's config fingerprint.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Fault injection: die *right here* if armed for this boundary.
    fn maybe_kill(&self, phase: KillPhase, round: u64) {
        if self.cfg.kill == Some((phase, round)) {
            std::process::exit(3);
        }
    }

    /// Fingerprint gate shared by every RPC: a worker configured with
    /// different shard hashing or RNG seeds would accept commands and
    /// silently diverge — refuse instead.
    fn check_fp(&self, body: &Json) -> Result<(), Response> {
        let fp = field(body, "fp")
            .and_then(crate::state::dec_str)
            .map_err(|e| Response::json(400, err_body(&e.to_string())))?;
        if fp != self.fingerprint {
            return Err(Response::json(
                409,
                err_body(&format!(
                    "config fingerprint mismatch: worker is '{}', request is '{fp}'",
                    self.fingerprint
                )),
            ));
        }
        Ok(())
    }

    fn parse_body(req: &Request) -> Result<Json, Response> {
        let text = std::str::from_utf8(&req.body)
            .map_err(|_| Response::json(400, err_body("body is not UTF-8")))?;
        Json::parse(text).map_err(|e| Response::json(400, err_body(&e.to_string())))
    }

    /// `POST /internal/apply {fp, seq, cmd}` — one journaled command,
    /// in journal order (the coordinator forwards from inside its
    /// apply critical section over one connection, so FIFO per worker
    /// is journal order). Rejected commands are applied for their side
    /// effects exactly like journal replay (`router.apply` is total).
    fn rpc_apply(&self, req: &Request) -> Response {
        let body = match Self::parse_body(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        if let Err(resp) = self.check_fp(&body) {
            return resp;
        }
        let (seq, cmd) = match (
            field(&body, "seq").and_then(dec_u64),
            field(&body, "cmd").and_then(Command::decode),
        ) {
            (Ok(seq), Ok(cmd)) => (seq, cmd),
            (Err(e), _) | (_, Err(e)) => return Response::json(400, err_body(&e.to_string())),
        };
        let router = self.router();
        // Rejections are part of the deterministic state machine: the
        // coordinator journaled this command whatever its outcome.
        let _ = router.apply(&cmd);
        self.applied.store(seq, Ordering::Relaxed);
        Response::json(200, Json::obj([("applied", enc_u64(seq))]).dump())
    }

    /// `POST /internal/candidates {fp, round, seed, shards}` — compute
    /// the candidate phase for the assigned shards under the
    /// coordinator's seed, stash the contexts for the settle broadcast,
    /// and return the exports. Refuses a round number or seed this
    /// replica would not produce itself: accepting either would settle
    /// the round from diverged state.
    fn rpc_candidates(&self, req: &Request) -> Response {
        let body = match Self::parse_body(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        if let Err(resp) = self.check_fp(&body) {
            return resp;
        }
        let (round, seed) = match (
            field(&body, "round").and_then(dec_u64),
            field(&body, "seed").and_then(dec_u64),
        ) {
            (Ok(r), Ok(s)) => (r, s),
            (Err(e), _) | (_, Err(e)) => return Response::json(400, err_body(&e.to_string())),
        };
        let router = self.router();
        let shard_count = router.shard_count();
        let assigned = match field(&body, "shards").and_then(arr) {
            Ok(items) => {
                let mut assigned = Vec::with_capacity(items.len());
                for item in items {
                    match dec_usize(item) {
                        Ok(i) if i < shard_count => assigned.push(i),
                        Ok(i) => {
                            return Response::json(
                                400,
                                err_body(&format!(
                                    "shard {i} out of range for {shard_count} shards"
                                )),
                            )
                        }
                        Err(e) => return Response::json(400, err_body(&e.to_string())),
                    }
                }
                assigned
            }
            Err(e) => return Response::json(400, err_body(&e.to_string())),
        };
        self.maybe_kill(KillPhase::PreCandidate, round);
        let expected_round = router.rounds_completed() + 1;
        if round != expected_round {
            return Response::json(
                409,
                err_body(&format!(
                    "worker expects round {expected_round}, refusing round {round}"
                )),
            );
        }
        let predicted = router.predict_round_seed();
        if seed != predicted {
            return Response::json(
                409,
                err_body(&format!(
                    "round seed {seed} is not the {predicted} this replica would draw: \
                     coordinator and worker have diverged"
                )),
            );
        }

        let mut pending = self.pending.lock();
        match pending.as_ref() {
            Some(p) if p.round == round && p.seed == seed => {}
            _ => {
                *pending = Some(PendingRound {
                    round,
                    seed,
                    slots: (0..shard_count).map(|_| None).collect(),
                });
            }
        }
        let Some(pending) = pending.as_mut() else {
            return Response::json(500, err_body("pending round vanished"));
        };
        // Shard-parallel candidate phase, exactly like a local round;
        // already-stashed shards (a repeated request after a lost
        // reply) are served from the stash, not recomputed — running
        // the candidate stage twice would double-advance the shard.
        let todo: Vec<usize> = assigned
            .iter()
            .copied()
            .filter(|&i| matches!(pending.slots.get(i), Some(None)))
            .collect();
        let computed: Vec<(usize, (RoundContext, CandidatePhaseExport))> = todo
            .par_iter()
            .map(|&i| (i, router.shard(i).begin_round_exported(seed)))
            .collect();
        for (i, pair) in computed {
            if let Some(slot) = pending.slots.get_mut(i) {
                *slot = Some(pair);
            }
        }
        let mut reply = Vec::with_capacity(assigned.len());
        for i in assigned {
            match pending.slots.get(i) {
                Some(Some((_, export))) => reply.push((i, export.clone())),
                _ => return Response::json(500, err_body(&format!("shard {i} did not compute"))),
            }
        }
        Response::json(
            200,
            Json::obj([
                ("round", enc_u64(round)),
                ("exports", codec::encode_indexed_exports(&reply)),
            ])
            .dump(),
        )
    }

    /// `POST /internal/settle {fp, round, seed, exports}` — the round
    /// cleared and settled on the coordinator; re-execute it here from
    /// the full export set. Shards this worker computed reuse their
    /// stashed contexts; the rest import their export (local expiry +
    /// audit replay). Clearing and settlement are then the same code
    /// path the coordinator ran, so the replica lands bit-identical.
    fn rpc_settle(&self, req: &Request) -> Response {
        let body = match Self::parse_body(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        if let Err(resp) = self.check_fp(&body) {
            return resp;
        }
        let (round, seed) = match (
            field(&body, "round").and_then(dec_u64),
            field(&body, "seed").and_then(dec_u64),
        ) {
            (Ok(r), Ok(s)) => (r, s),
            (Err(e), _) | (_, Err(e)) => return Response::json(400, err_body(&e.to_string())),
        };
        let router = self.router();
        let shard_count = router.shard_count();
        let exports =
            match field(&body, "exports").and_then(|j| codec::decode_exports(j, shard_count)) {
                Ok(exports) => exports,
                Err(e) => return Response::json(400, err_body(&e.to_string())),
            };
        self.maybe_kill(KillPhase::PreSettle, round);
        let expected_round = router.rounds_completed() + 1;
        if round != expected_round {
            return Response::json(
                409,
                err_body(&format!(
                    "worker expects round {expected_round}, refusing round {round}"
                )),
            );
        }
        // RNG lockstep: drawing (not predicting) advances this
        // replica's coordinator stream exactly as the coordinator's
        // own draw did. A mismatch means divergence — and the draw is
        // the last mutation before the check, so a refused settle
        // leaves the replica re-provisionable, not half-settled.
        let drawn = router.draw_round_seed();
        if drawn != seed {
            return Response::json(
                409,
                err_body(&format!(
                    "round seed {seed} is not the {drawn} this replica drew: \
                     coordinator and worker have diverged"
                )),
            );
        }
        let stash = {
            let mut pending = self.pending.lock();
            match pending.take() {
                Some(p) if p.round == round && p.seed == seed => Some(p),
                _ => None,
            }
        };
        let mut slots = match stash {
            Some(p) => p.slots,
            None => (0..shard_count).map(|_| None).collect(),
        };
        let mut ctxs = Vec::with_capacity(shard_count);
        for (i, export) in exports.iter().enumerate() {
            match slots.get_mut(i).and_then(Option::take) {
                Some((ctx, _)) => ctxs.push(ctx),
                None => ctxs.push(router.shard(i).begin_round_imported(seed, export)),
            }
        }
        let sales = router.clear_round(&mut ctxs);
        self.maybe_kill(KillPhase::MidSettle, round);
        let report = router.finish_round(ctxs, sales);
        Response::json(
            200,
            Json::obj([
                ("rounds", enc_u64(router.rounds_completed())),
                ("sales", enc_u64(report.sales as u64)),
            ])
            .dump(),
        )
    }

    /// `GET /internal/digest` — the replica-equivalence probe.
    fn rpc_digest(&self) -> Response {
        let router = self.router();
        Response::json(
            200,
            Json::obj([
                ("digest", enc_u64(router.state_digest())),
                ("rounds", enc_u64(router.rounds_completed())),
                ("applied", enc_u64(self.applied.load(Ordering::Relaxed))),
            ])
            .dump(),
        )
    }

    /// `POST /internal/restore {fp, applied, state}` — become a fresh
    /// replica of the coordinator's quiesced state: decode the image
    /// into a brand-new router (same restore path as crash recovery)
    /// and swap it in wholesale. Any pending round is stale by
    /// definition and dropped.
    fn rpc_restore(&self, req: &Request) -> Response {
        let body = match Self::parse_body(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        if let Err(resp) = self.check_fp(&body) {
            return resp;
        }
        let applied = match field(&body, "applied").and_then(dec_u64) {
            Ok(a) => a,
            Err(e) => return Response::json(400, err_body(&e.to_string())),
        };
        let image = match field(&body, "state").and_then(|state| {
            Ok(StateImage {
                substrate: field(state, "substrate")?.clone(),
                shards: arr(field(state, "shards")?)?.to_vec(),
                router: field(state, "router")?.clone(),
            })
        }) {
            Ok(image) => image,
            Err(e) => return Response::json(400, err_body(&e.to_string())),
        };
        let decoded = match state::decode(&image) {
            Ok(decoded) => decoded,
            Err(e) => return Response::json(400, err_body(&e.to_string())),
        };
        let fresh = ShardRouter::new(&self.cfg.market, self.cfg.shards);
        if let Err(e) = fresh.restore_state(decoded) {
            return Response::json(400, err_body(&e.to_string()));
        }
        let digest = fresh.state_digest();
        *self.pending.lock() = None;
        *self.router.lock() = Arc::new(fresh);
        self.applied.store(applied, Ordering::Relaxed);
        Response::json(
            200,
            Json::obj([("digest", enc_u64(digest)), ("applied", enc_u64(applied))]).dump(),
        )
    }

    fn health_body(&self) -> String {
        let router = self.router();
        Json::obj([
            ("status", Json::str("ok")),
            ("role", Json::str("worker")),
            (
                "rounds_completed",
                Json::Num(router.rounds_completed() as f64),
            ),
            (
                "applied",
                Json::Num(self.applied.load(Ordering::Relaxed) as f64),
            ),
        ])
        .dump()
    }
}

impl Service for WorkerNode {
    fn handle(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/internal/apply") => self.rpc_apply(req),
            ("POST", "/internal/candidates") => self.rpc_candidates(req),
            ("POST", "/internal/settle") => self.rpc_settle(req),
            ("GET", "/internal/digest") => self.rpc_digest(),
            ("POST", "/internal/restore") => self.rpc_restore(req),
            ("GET", "/health") => Response::json(200, self.health_body()),
            ("GET", "/metrics") => Response::text(
                200,
                dmp_telemetry::global().render_prometheus(),
                "text/plain; version=0.0.4",
            ),
            ("GET", "/trace") => Response::json(200, dmp_telemetry::tracer().to_json()),
            ("GET" | "POST", _) => Response::json(404, err_body("unknown route")),
            _ => Response::json(405, err_body("method not allowed")),
        }
    }

    fn handle_inline(&self, req: &Request) -> Option<Response> {
        // Same inline contract as the coordinator surface: /metrics
        // and /trace touch only telemetry-internal locks; /health
        // clones the router handle (a momentary uncontended lock — the
        // long-running round work happens on a cloned Arc, never under
        // it) and reads atomics.
        if req.method == "GET" && matches!(req.path.as_str(), "/health" | "/metrics" | "/trace") {
            return Some(self.handle(req));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_mechanism::design::MarketDesign;

    fn worker_cfg() -> WorkerConfig {
        let market =
            MarketConfig::external(5).with_design(MarketDesign::posted_price_baseline(10.0));
        WorkerConfig::new(market, 2)
    }

    fn post(path: &str, body: Json) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.dump().into_bytes(),
        }
    }

    fn parse(resp: &Response) -> Json {
        Json::parse(&resp.body).expect("json body")
    }

    #[test]
    fn apply_rpc_mirrors_a_command() {
        let worker = WorkerNode::new(worker_cfg());
        let cmd = Command::Enroll {
            name: "alice".into(),
            role: "buyer".into(),
        };
        let body = Json::obj([
            ("fp", Json::str(worker.fingerprint())),
            ("seq", enc_u64(1)),
            ("cmd", cmd.encode()),
        ]);
        let resp = worker.handle(&post("/internal/apply", body));
        assert_eq!(resp.status, 200);
        assert!(worker.router().participant_exists("alice"));
    }

    #[test]
    fn wrong_fingerprint_is_refused() {
        let worker = WorkerNode::new(worker_cfg());
        let body = Json::obj([
            ("fp", Json::str("v3 shards=9 seed=9 ...")),
            ("seq", enc_u64(1)),
            (
                "cmd",
                Command::Enroll {
                    name: "alice".into(),
                    role: "buyer".into(),
                }
                .encode(),
            ),
        ]);
        let resp = worker.handle(&post("/internal/apply", body));
        assert_eq!(resp.status, 409);
        assert!(!worker.router().participant_exists("alice"));
    }

    #[test]
    fn candidates_refuse_wrong_seed_and_round() {
        let worker = WorkerNode::new(worker_cfg());
        let seed = worker.router().predict_round_seed();
        let wrong_seed = Json::obj([
            ("fp", Json::str(worker.fingerprint())),
            ("round", enc_u64(1)),
            ("seed", enc_u64(seed.wrapping_add(1))),
            ("shards", Json::Arr(vec![enc_u64(0)])),
        ]);
        let resp = worker.handle(&post("/internal/candidates", wrong_seed));
        assert_eq!(resp.status, 409, "{}", resp.body);

        let wrong_round = Json::obj([
            ("fp", Json::str(worker.fingerprint())),
            ("round", enc_u64(7)),
            ("seed", enc_u64(seed)),
            ("shards", Json::Arr(vec![enc_u64(0)])),
        ]);
        let resp = worker.handle(&post("/internal/candidates", wrong_round));
        assert_eq!(resp.status, 409);
        // Neither refusal advanced the replica.
        assert_eq!(worker.router().predict_round_seed(), seed);
        assert_eq!(worker.router().rounds_completed(), 0);
    }

    #[test]
    fn candidates_then_settle_tracks_a_local_round() {
        // A worker fed the candidate/settle pair must land on exactly
        // the state of a standalone router running the same round.
        let reference = ShardRouter::new(&worker_cfg().market, 2);
        let worker = WorkerNode::new(worker_cfg());
        for router in [&reference, worker.router().as_ref()] {
            let _ = router.apply(&Command::Enroll {
                name: "alice".into(),
                role: "buyer".into(),
            });
            let _ = router.apply(&Command::Deposit {
                account: "alice".into(),
                amount: 50.0,
            });
        }
        let seed = worker.router().predict_round_seed();
        let candidates = Json::obj([
            ("fp", Json::str(worker.fingerprint())),
            ("round", enc_u64(1)),
            ("seed", enc_u64(seed)),
            ("shards", Json::Arr(vec![enc_u64(0)])),
        ]);
        let resp = worker.handle(&post("/internal/candidates", candidates));
        assert_eq!(resp.status, 200, "{}", resp.body);

        // The coordinator's authoritative run (local compute).
        reference.run_round();

        // Broadcast the full export set back; worker shard 0 reuses
        // its stash, shard 1 imports.
        let drawn = reference.state_digest(); // pin before worker settles
        let exports: Vec<_> = {
            // Reconstruct what the coordinator shipped: recompute the
            // same round on a third identical replica.
            let replica = ShardRouter::new(&worker_cfg().market, 2);
            let _ = replica.apply(&Command::Enroll {
                name: "alice".into(),
                role: "buyer".into(),
            });
            let _ = replica.apply(&Command::Deposit {
                account: "alice".into(),
                amount: 50.0,
            });
            let replica_seed = replica.draw_round_seed();
            assert_eq!(replica_seed, seed);
            replica
                .shards()
                .iter()
                .map(|m| m.begin_round_exported(replica_seed).1)
                .collect()
        };
        let settle = Json::obj([
            ("fp", Json::str(worker.fingerprint())),
            ("round", enc_u64(1)),
            ("seed", enc_u64(seed)),
            ("exports", codec::encode_exports(&exports)),
        ]);
        let resp = worker.handle(&post("/internal/settle", settle));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(worker.router().rounds_completed(), 1);
        assert_eq!(
            worker.router().state_digest(),
            drawn,
            "replica diverged from the coordinator after one distributed round"
        );
    }

    #[test]
    fn restore_provisions_a_fresh_replica() {
        let source = ShardRouter::new(&worker_cfg().market, 2);
        let _ = source.apply(&Command::Enroll {
            name: "alice".into(),
            role: "seller".into(),
        });
        let _ = source.apply(&Command::Deposit {
            account: "alice".into(),
            amount: 9.5,
        });
        let image = state::encode(&source.export_state());
        let worker = WorkerNode::new(worker_cfg());
        let body = Json::obj([
            ("fp", Json::str(worker.fingerprint())),
            ("applied", enc_u64(2)),
            (
                "state",
                Json::obj([
                    ("substrate", image.substrate.clone()),
                    ("shards", Json::Arr(image.shards.clone())),
                    ("router", image.router.clone()),
                ]),
            ),
        ]);
        let resp = worker.handle(&post("/internal/restore", body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(worker.router().state_digest(), source.state_digest());
        let digest = parse(&resp);
        assert_eq!(
            digest.req_str("digest").ok(),
            Some(source.state_digest().to_string())
        );
    }
}
