//! `dmp-worker` — a shard-worker process for the distributed exchange.
//!
//! Boots a [`WorkerNode`] (a full in-memory replica of the market,
//! built from the same config flags as the coordinator) behind the
//! evented gateway, prints the bound address on stdout (the spawn
//! handshake the coordinator and the e2e tests read), and serves the
//! `/internal/*` RPC surface until killed.
//!
//! ```text
//! dmp-worker --shards 4 --seed 7 --posted-price 12.0 \
//!            [--addr 127.0.0.1:0] [--max-candidates 4] \
//!            [--contribution-reward 0] \
//!            [--kill-phase pre-candidate|pre-settle|mid-settle --kill-round N]
//! ```
//!
//! The `--kill-*` flags arm fault injection: the process exits at that
//! phase boundary of that round, standing in for a crash at the worst
//! possible instant (the re-dispatch e2e tests drive this).

use std::sync::Arc;

use dmp_core::market::MarketConfig;
use dmp_mechanism::design::MarketDesign;
use dmp_service::gateway::{Gateway, GatewayConfig};
use dmp_service::worker::{KillPhase, WorkerConfig, WorkerNode};

fn fail(msg: &str) -> ! {
    eprintln!("dmp-worker: {msg}");
    eprintln!(
        "usage: dmp-worker [--addr HOST:PORT] [--shards N] [--seed N] \
         [--posted-price X] [--max-candidates N] [--contribution-reward X] \
         [--kill-phase pre-candidate|pre-settle|mid-settle --kill-round N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.map(|v| v.parse::<T>()) {
        Some(Ok(v)) => v,
        _ => fail(&format!("{flag} needs a valid value")),
    }
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut shards = 4usize;
    let mut seed = 7u64;
    let mut posted_price: Option<f64> = None;
    let mut max_candidates: Option<usize> = None;
    let mut contribution_reward: Option<f64> = None;
    let mut kill_phase: Option<KillPhase> = None;
    let mut kill_round: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => addr = parse(&flag, args.next()),
            "--shards" => shards = parse(&flag, args.next()),
            "--seed" => seed = parse(&flag, args.next()),
            "--posted-price" => posted_price = Some(parse(&flag, args.next())),
            "--max-candidates" => max_candidates = Some(parse(&flag, args.next())),
            "--contribution-reward" => contribution_reward = Some(parse(&flag, args.next())),
            "--kill-phase" => {
                let spelled: String = parse(&flag, args.next());
                match KillPhase::parse(&spelled) {
                    Some(phase) => kill_phase = Some(phase),
                    None => fail(&format!("unknown kill phase '{spelled}'")),
                }
            }
            "--kill-round" => kill_round = Some(parse(&flag, args.next())),
            other => fail(&format!("unknown flag '{other}'")),
        }
    }

    let mut market = MarketConfig::external(seed);
    if let Some(price) = posted_price {
        market = market.with_design(MarketDesign::posted_price_baseline(price));
    }
    if let Some(n) = max_candidates {
        market.max_candidates = n;
    }
    if let Some(reward) = contribution_reward {
        market.contribution_reward = reward;
    }

    let mut cfg = WorkerConfig::new(market, shards);
    match (kill_phase, kill_round) {
        (Some(phase), Some(round)) => cfg = cfg.with_kill(phase, round),
        (None, None) => {}
        _ => fail("--kill-phase and --kill-round must be given together"),
    }

    let worker = Arc::new(WorkerNode::new(cfg));
    let gateway_cfg = GatewayConfig {
        addr,
        ..GatewayConfig::default()
    };
    let gateway = match Gateway::serve_service(worker, gateway_cfg) {
        Ok(gateway) => gateway,
        Err(e) => fail(&format!("bind failed: {e}")),
    };
    // The spawn handshake: whoever started us reads the bound address
    // (ephemeral ports make fixed config unnecessary) from stdout.
    println!("{}", gateway.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}
