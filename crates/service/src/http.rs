//! Minimal HTTP/1.1 framing — just enough for the gateway (and its
//! client helper): request-line + headers + `Content-Length` bodies,
//! keep-alive by default, no chunked encoding.
//!
//! Two request decoders share the same line-level grammar:
//!
//! * [`read_request`] — one-shot, over a blocking `BufRead` stream
//!   (client-side tests, oracles);
//! * [`RequestParser`] — **resumable**: feed it whatever bytes the
//!   socket produced (down to one at a time), and it yields complete
//!   requests as they materialize. Multiple pipelined requests in one
//!   buffer come out in order. This is what the evented gateway runs —
//!   a readiness reactor never gets to block until a request finishes.

use std::io::{BufRead, Write};

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method (`GET`, `POST`, ...), upper-case as received.
    pub method: String,
    /// Path, without query string.
    pub path: String,
    /// Lower-cased header `(name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Header lookup (names are stored lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this
    /// request (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// Errors surfaced to the connection loop.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before a request line: the peer is done.
    Eof,
    /// Malformed request (connection should answer 400 and close).
    Malformed(String),
    /// Body larger than the configured cap (answer 413 and close).
    TooLarge,
    /// Underlying socket error.
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Longest accepted request/status/header line, in bytes — enforced
/// *while* reading, so a peer cannot grow server memory with an
/// endless line.
const MAX_LINE: usize = 8 * 1024;

/// Most headers accepted per message.
const MAX_HEADERS: usize = 100;

/// Read one `\n`-terminated line, capped at `MAX_LINE` bytes. Returns
/// `None` on clean EOF before any byte.
fn read_line_bounded(stream: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (consumed, done) = {
            let buf = stream.fill_buf()?;
            if buf.is_empty() {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("eof mid-line".into()));
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&buf[..pos]);
                    (pos + 1, true)
                }
                None => {
                    line.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        stream.consume(consumed);
        if line.len() > MAX_LINE {
            return Err(HttpError::TooLarge);
        }
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| HttpError::Malformed("line is not UTF-8".into()));
        }
    }
}

/// Parse `METHOD target [version]`: method upper-cased, query string
/// dropped, path required to be origin-form.
fn parse_request_line(line: &str) -> Result<(String, String), HttpError> {
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(HttpError::Malformed(
            "request target must be absolute".into(),
        ));
    }
    Ok((method, path))
}

/// Parse one `Name: value` header line, folding `content-length` into
/// `content_length` with the anti-smuggling duplicate check.
fn parse_header_line(
    header: &str,
    content_length: &mut Option<usize>,
) -> Result<(String, String), HttpError> {
    let Some((name, value)) = header.split_once(':') else {
        return Err(HttpError::Malformed(format!("bad header '{header}'")));
    };
    let name = name.trim().to_lowercase();
    let value = value.trim().to_string();
    if name == "content-length" {
        let parsed: usize = value
            .parse()
            .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
        // Conflicting duplicates are the request-smuggling classic:
        // two parsers on the path disagreeing on the body boundary
        // desyncs the connection. Reject rather than last-one-wins
        // (RFC 9110 §8.6 allows collapsing *identical* repeats).
        if content_length.is_some_and(|prev| prev != parsed) {
            return Err(HttpError::Malformed(
                "conflicting duplicate content-length headers".into(),
            ));
        }
        *content_length = Some(parsed);
    }
    Ok((name, value))
}

/// Read one request off a buffered stream.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let Some(line) = read_line_bounded(stream)? else {
        return Err(HttpError::Eof);
    };
    let (method, path) = parse_request_line(&line)?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let Some(header) = read_line_bounded(stream)? else {
            return Err(HttpError::Malformed("eof inside headers".into()));
        };
        if header.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge);
        }
        headers.push(parse_header_line(&header, &mut content_length)?);
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// What the incremental parser is in the middle of.
enum ParseState {
    /// Reading the request line + headers.
    Head {
        /// `(method, path)` once the request line has been seen.
        request_line: Option<(String, String)>,
        headers: Vec<(String, String)>,
        content_length: Option<usize>,
    },
    /// Head complete; waiting for `need` body bytes.
    Body { head: Request, need: usize },
}

impl ParseState {
    fn fresh() -> ParseState {
        ParseState::Head {
            request_line: None,
            headers: Vec::new(),
            content_length: None,
        }
    }
}

/// A resumable HTTP/1.1 request parser for non-blocking sockets.
///
/// [`RequestParser::feed`] appends whatever bytes arrived;
/// [`RequestParser::next`] yields each complete request exactly once,
/// in wire order, or `Ok(None)` when more bytes are needed. Splitting
/// the input at any byte boundary — mid-request-line, mid-header,
/// mid-body — yields the same requests as a one-shot parse (pinned by
/// proptest against [`read_request`]).
///
/// The same bounds as the one-shot parser are enforced *while* bytes
/// accumulate ([`MAX_LINE`], [`MAX_HEADERS`], the body cap), so a peer
/// trickling an endless header grows no further than one line past the
/// cap. After an error the parser is poisoned — the connection answered
/// a 400/413 and is about to close; further `next` calls keep failing.
pub struct RequestParser {
    buf: Vec<u8>,
    /// Start of the current (possibly partial) line within `buf`.
    line_start: usize,
    /// First byte not yet scanned for a line terminator.
    scan: usize,
    state: ParseState,
    poisoned: bool,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            line_start: 0,
            scan: 0,
            state: ParseState::fresh(),
            poisoned: false,
        }
    }

    /// Append bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a completed request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to extract the next complete request.
    pub fn next(&mut self, max_body: usize) -> Result<Option<Request>, HttpError> {
        if self.poisoned {
            return Err(HttpError::Malformed("parser previously errored".into()));
        }
        match self.advance(max_body) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn advance(&mut self, max_body: usize) -> Result<Option<Request>, HttpError> {
        loop {
            match &mut self.state {
                ParseState::Head {
                    request_line,
                    headers,
                    content_length,
                } => {
                    let Some(nl) = self.buf[self.scan..].iter().position(|&b| b == b'\n') else {
                        // No full line yet: enforce the line cap on the
                        // partial tail, then wait for more bytes.
                        if self.buf.len() - self.line_start > MAX_LINE {
                            return Err(HttpError::TooLarge);
                        }
                        self.scan = self.buf.len();
                        return Ok(None);
                    };
                    let end = self.scan + nl;
                    let mut raw = &self.buf[self.line_start..end];
                    if raw.len() > MAX_LINE {
                        return Err(HttpError::TooLarge);
                    }
                    if raw.last() == Some(&b'\r') {
                        raw = &raw[..raw.len() - 1];
                    }
                    let line = std::str::from_utf8(raw)
                        .map_err(|_| HttpError::Malformed("line is not UTF-8".into()))?;
                    if request_line.is_none() {
                        *request_line = Some(parse_request_line(line)?);
                    } else if line.is_empty() {
                        // Blank line: the head is complete.
                        let (method, path) = request_line.take().expect("request line parsed");
                        let need = content_length.unwrap_or(0);
                        if need > max_body {
                            return Err(HttpError::TooLarge);
                        }
                        let head = Request {
                            method,
                            path,
                            headers: std::mem::take(headers),
                            body: Vec::new(),
                        };
                        // Drop the head bytes; the body starts at 0 now.
                        self.buf.drain(..end + 1);
                        self.line_start = 0;
                        self.scan = 0;
                        self.state = ParseState::Body { head, need };
                        continue;
                    } else {
                        if headers.len() >= MAX_HEADERS {
                            return Err(HttpError::TooLarge);
                        }
                        headers.push(parse_header_line(line, content_length)?);
                    }
                    self.line_start = end + 1;
                    self.scan = end + 1;
                }
                ParseState::Body { head, need } => {
                    if self.buf.len() < *need {
                        return Ok(None);
                    }
                    let mut req = std::mem::replace(
                        head,
                        Request {
                            method: String::new(),
                            path: String::new(),
                            headers: Vec::new(),
                            body: Vec::new(),
                        },
                    );
                    req.body = self.buf[..*need].to_vec();
                    self.buf.drain(..*need);
                    self.line_start = 0;
                    self.scan = 0;
                    self.state = ParseState::fresh();
                    return Ok(Some(req));
                }
            }
        }
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body (JSON text almost everywhere; `/metrics` is plain text).
    pub body: String,
    /// `content-type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// A response with an explicit content type (e.g. the Prometheus
    /// text exposition on `/metrics`).
    pub fn text(status: u16, body: impl Into<String>, content_type: &'static str) -> Self {
        Response {
            status,
            body: body.into(),
            content_type,
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serialize to wire bytes (what the reactor queues per response).
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut out = Vec::with_capacity(self.body.len() + 128);
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n{}",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            connection,
            self.body
        );
        out
    }

    /// Serialize onto a stream.
    pub fn write_to(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes(keep_alive))?;
        stream.flush()
    }
}

/// Read one response (client side). Returns `(status, body)`.
pub fn read_response(stream: &mut impl BufRead) -> Result<(u16, Vec<u8>), HttpError> {
    read_response_full(stream).map(|(status, body, _)| (status, body))
}

/// Read one response, also reporting whether the server marked the
/// connection for closing (`Connection: close`) — a keep-alive client
/// must drop and re-dial before its next request instead of writing
/// into a socket the server is about to shut.
pub fn read_response_full(stream: &mut impl BufRead) -> Result<(u16, Vec<u8>, bool), HttpError> {
    let Some(line) = read_line_bounded(stream)? else {
        return Err(HttpError::Eof);
    };
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line '{line}'")))?;
    let mut content_length: Option<usize> = None;
    let mut close = false;
    let mut seen = 0usize;
    loop {
        let Some(header) = read_line_bounded(stream)? else {
            return Err(HttpError::Malformed("eof inside headers".into()));
        };
        if header.is_empty() {
            break;
        }
        seen += 1;
        if seen > MAX_HEADERS {
            return Err(HttpError::TooLarge);
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
                // Same smuggling guard as the server side.
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Err(HttpError::Malformed(
                        "conflicting duplicate content-length headers".into(),
                    ));
                }
                content_length = Some(parsed);
            } else if name.trim().eq_ignore_ascii_case("connection") {
                close = value.trim().eq_ignore_ascii_case("close");
            }
        }
    }
    let mut body = vec![0u8; content_length.unwrap_or(0)];
    stream.read_exact(&mut body)?;
    Ok((status, body, close))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trips_through_bytes() {
        let raw = b"POST /offers?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nbody";
        let mut reader = BufReader::new(&raw[..]);
        let req = read_request(&mut reader, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/offers");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn conflicting_duplicate_content_length_rejected() {
        // Classic request-smuggling shape: two parsers could disagree on
        // where the body ends. Must be a hard 400, not last-one-wins.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nbody";
        let mut reader = BufReader::new(&raw[..]);
        match read_request(&mut reader, 1024) {
            Err(HttpError::Malformed(msg)) => assert!(msg.contains("content-length"), "{msg}"),
            other => panic!("conflicting duplicates accepted: {other:?}"),
        }
    }

    #[test]
    fn identical_duplicate_content_length_tolerated() {
        // RFC 9110 §8.6: identical repeated values may be collapsed.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody";
        let mut reader = BufReader::new(&raw[..]);
        let req = read_request(&mut reader, 1024).unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn response_with_conflicting_content_length_rejected() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 1\r\ncontent-length: 9\r\n\r\nx";
        let mut reader = BufReader::new(&raw[..]);
        assert!(matches!(
            read_response(&mut reader),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        assert!(matches!(
            read_request(&mut reader, 10),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn endless_header_line_rejected_while_reading() {
        // No newline ever arrives: the cap must trigger mid-line, not
        // after buffering the whole thing.
        let mut raw = b"GET / HTTP/1.1\r\nx-big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
        let mut reader = BufReader::new(&raw[..]);
        assert!(matches!(
            read_request(&mut reader, 1024),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..200 {
            raw.extend_from_slice(format!("x-h{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let mut reader = BufReader::new(&raw[..]);
        assert!(matches!(
            read_request(&mut reader, 1024),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn eof_is_clean_end() {
        let mut reader = BufReader::new(&b""[..]);
        assert!(matches!(read_request(&mut reader, 10), Err(HttpError::Eof)));
    }

    #[test]
    fn incremental_parser_handles_byte_at_a_time() {
        let raw = b"POST /offers?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nbodyGET /health HTTP/1.1\r\n\r\n";
        let mut parser = RequestParser::new();
        let mut out = Vec::new();
        for &b in raw.iter() {
            parser.feed(&[b]);
            while let Some(req) = parser.next(1024).unwrap() {
                out.push(req);
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].method, "POST");
        assert_eq!(out[0].path, "/offers");
        assert_eq!(out[0].header("host"), Some("localhost"));
        assert_eq!(out[0].body, b"body");
        assert_eq!(out[1].method, "GET");
        assert_eq!(out[1].path, "/health");
        assert!(out[1].body.is_empty());
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn incremental_parser_yields_pipelined_requests_in_order() {
        let mut raw = Vec::new();
        for i in 0..10 {
            raw.extend_from_slice(
                format!("POST /r{i} HTTP/1.1\r\ncontent-length: 2\r\n\r\n{i:02}").as_bytes(),
            );
        }
        let mut parser = RequestParser::new();
        parser.feed(&raw);
        for i in 0..10 {
            let req = parser.next(1024).unwrap().expect("request ready");
            assert_eq!(req.path, format!("/r{i}"));
            assert_eq!(req.body, format!("{i:02}").as_bytes());
        }
        assert!(parser.next(1024).unwrap().is_none());
    }

    #[test]
    fn incremental_parser_caps_endless_line_while_buffering() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\nx-big: ");
        let mut hit_cap = false;
        for _ in 0..70 {
            parser.feed(&[b'a'; 1024]);
            match parser.next(1024) {
                Ok(None) => continue,
                Err(HttpError::TooLarge) => {
                    hit_cap = true;
                    break;
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(hit_cap, "cap must trigger before the line completes");
        // Poisoned from here on.
        assert!(parser.next(1024).is_err());
    }

    #[test]
    fn incremental_parser_rejects_oversized_body_before_it_arrives() {
        let mut parser = RequestParser::new();
        parser.feed(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n");
        assert!(matches!(parser.next(10), Err(HttpError::TooLarge)));
    }

    #[test]
    fn incremental_parser_matches_one_shot_on_malformed_input() {
        for raw in [
            &b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nbody"[..],
            &b"GET nopath HTTP/1.1\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"[..],
        ] {
            let mut reader = BufReader::new(raw);
            let one_shot = read_request(&mut reader, 1024);
            let mut parser = RequestParser::new();
            parser.feed(raw);
            let incremental = parser.next(1024);
            match (&one_shot, &incremental) {
                (Err(HttpError::Malformed(a)), Err(HttpError::Malformed(b))) => {
                    assert_eq!(a, b, "same diagnostic for {raw:?}")
                }
                other => panic!("expected matching Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn response_close_flag_surfaces_to_clients() {
        let mut buf = Vec::new();
        Response::json(200, "{}").write_to(&mut buf, false).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        let (status, _, close) = read_response_full(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert!(close, "connection: close must surface");

        let mut buf = Vec::new();
        Response::json(200, "{}").write_to(&mut buf, true).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        let (_, _, close) = read_response_full(&mut reader).unwrap();
        assert!(!close);
    }

    #[test]
    fn response_serializes_and_parses() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut buf, true)
            .unwrap();
        let mut reader = BufReader::new(&buf[..]);
        let (status, body) = read_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\":true}");
    }
}
