//! Minimal HTTP/1.1 framing over `std::io` streams — just enough for
//! the gateway (and its client helper): request-line + headers +
//! `Content-Length` bodies, keep-alive by default, no chunked encoding.

use std::io::{BufRead, Write};

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method (`GET`, `POST`, ...), upper-case as received.
    pub method: String,
    /// Path, without query string.
    pub path: String,
    /// Lower-cased header `(name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Header lookup (names are stored lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this
    /// request (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// Errors surfaced to the connection loop.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before a request line: the peer is done.
    Eof,
    /// Malformed request (connection should answer 400 and close).
    Malformed(String),
    /// Body larger than the configured cap (answer 413 and close).
    TooLarge,
    /// Underlying socket error.
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Longest accepted request/status/header line, in bytes — enforced
/// *while* reading, so a peer cannot grow server memory with an
/// endless line.
const MAX_LINE: usize = 8 * 1024;

/// Most headers accepted per message.
const MAX_HEADERS: usize = 100;

/// Read one `\n`-terminated line, capped at `MAX_LINE` bytes. Returns
/// `None` on clean EOF before any byte.
fn read_line_bounded(stream: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (consumed, done) = {
            let buf = stream.fill_buf()?;
            if buf.is_empty() {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("eof mid-line".into()));
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&buf[..pos]);
                    (pos + 1, true)
                }
                None => {
                    line.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        stream.consume(consumed);
        if line.len() > MAX_LINE {
            return Err(HttpError::TooLarge);
        }
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| HttpError::Malformed("line is not UTF-8".into()));
        }
    }
}

/// Read one request off a buffered stream.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let Some(line) = read_line_bounded(stream)? else {
        return Err(HttpError::Eof);
    };
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(HttpError::Malformed(
            "request target must be absolute".into(),
        ));
    }

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let Some(header) = read_line_bounded(stream)? else {
            return Err(HttpError::Malformed("eof inside headers".into()));
        };
        if header.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge);
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header '{header}'")));
        };
        let name = name.trim().to_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let parsed: usize = value
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
            // Conflicting duplicates are the request-smuggling classic:
            // two parsers on the path disagreeing on the body boundary
            // desyncs the connection. Reject rather than last-one-wins
            // (RFC 9110 §8.6 allows collapsing *identical* repeats).
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(HttpError::Malformed(
                    "conflicting duplicate content-length headers".into(),
                ));
            }
            content_length = Some(parsed);
        }
        headers.push((name, value));
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body (JSON text throughout the gateway).
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serialize onto a stream.
    pub fn write_to(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            stream,
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n{}",
            self.status,
            self.reason(),
            self.body.len(),
            connection,
            self.body
        )?;
        stream.flush()
    }
}

/// Read one response (client side). Returns `(status, body)`.
pub fn read_response(stream: &mut impl BufRead) -> Result<(u16, Vec<u8>), HttpError> {
    let Some(line) = read_line_bounded(stream)? else {
        return Err(HttpError::Eof);
    };
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line '{line}'")))?;
    let mut content_length: Option<usize> = None;
    let mut seen = 0usize;
    loop {
        let Some(header) = read_line_bounded(stream)? else {
            return Err(HttpError::Malformed("eof inside headers".into()));
        };
        if header.is_empty() {
            break;
        }
        seen += 1;
        if seen > MAX_HEADERS {
            return Err(HttpError::TooLarge);
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
                // Same smuggling guard as the server side.
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Err(HttpError::Malformed(
                        "conflicting duplicate content-length headers".into(),
                    ));
                }
                content_length = Some(parsed);
            }
        }
    }
    let mut body = vec![0u8; content_length.unwrap_or(0)];
    stream.read_exact(&mut body)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trips_through_bytes() {
        let raw = b"POST /offers?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nbody";
        let mut reader = BufReader::new(&raw[..]);
        let req = read_request(&mut reader, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/offers");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn conflicting_duplicate_content_length_rejected() {
        // Classic request-smuggling shape: two parsers could disagree on
        // where the body ends. Must be a hard 400, not last-one-wins.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nbody";
        let mut reader = BufReader::new(&raw[..]);
        match read_request(&mut reader, 1024) {
            Err(HttpError::Malformed(msg)) => assert!(msg.contains("content-length"), "{msg}"),
            other => panic!("conflicting duplicates accepted: {other:?}"),
        }
    }

    #[test]
    fn identical_duplicate_content_length_tolerated() {
        // RFC 9110 §8.6: identical repeated values may be collapsed.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody";
        let mut reader = BufReader::new(&raw[..]);
        let req = read_request(&mut reader, 1024).unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn response_with_conflicting_content_length_rejected() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 1\r\ncontent-length: 9\r\n\r\nx";
        let mut reader = BufReader::new(&raw[..]);
        assert!(matches!(
            read_response(&mut reader),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        assert!(matches!(
            read_request(&mut reader, 10),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn endless_header_line_rejected_while_reading() {
        // No newline ever arrives: the cap must trigger mid-line, not
        // after buffering the whole thing.
        let mut raw = b"GET / HTTP/1.1\r\nx-big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
        let mut reader = BufReader::new(&raw[..]);
        assert!(matches!(
            read_request(&mut reader, 1024),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..200 {
            raw.extend_from_slice(format!("x-h{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let mut reader = BufReader::new(&raw[..]);
        assert!(matches!(
            read_request(&mut reader, 1024),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn eof_is_clean_end() {
        let mut reader = BufReader::new(&b""[..]);
        assert!(matches!(read_request(&mut reader, 10), Err(HttpError::Eof)));
    }

    #[test]
    fn response_serializes_and_parses() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut buf, true)
            .unwrap();
        let mut reader = BufReader::new(&buf[..]);
        let (status, body) = read_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\":true}");
    }
}
