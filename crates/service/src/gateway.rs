//! The network gateway: an **evented HTTP/1.1 server** — one reactor
//! thread multiplexing every connection over an OS readiness queue
//! (epoll on Linux via the `compat/polling` shim), with a sharded
//! apply pool executing journaled commands off the reactor thread.
//! See [`crate::reactor`] for the event-loop internals.
//!
//! Wire behavior:
//!
//! * **Keep-alive + pipelining.** Clients may send many requests
//!   without waiting; responses always come back in request order.
//!   At most [`GatewayConfig::max_pipeline`] requests per connection
//!   are in flight before the reactor stops reading that socket
//!   (TCP-window backpressure, not server memory).
//! * **Idle timeout.** A connection that sends nothing for
//!   [`GatewayConfig::read_timeout`] is closed by the reactor's timer
//!   wheel — an idle or slow-loris peer never pins a thread, because
//!   no thread ever blocks on a socket.
//! * **`Connection: close`** is honored after the response flushes.
//!
//! | Endpoint          | Command journaled        | Response              |
//! |-------------------|--------------------------|-----------------------|
//! | `POST /enroll`    | `Enroll` (+ `Deposit`)   | shard assignment      |
//! | `POST /deposits`  | `Deposit`                | new balance           |
//! | `POST /offers`    | `SubmitOffer`            | offer id + shard      |
//! | `POST /asks`      | `SubmitAsk`              | dataset id + shard    |
//! | `POST /licenses`  | `GrantLicense`           | dataset id + shard    |
//! | `POST /rounds`    | `RunRound`               | merged round reports  |
//! | `POST /snapshot`  | — (admin, not a mutation)| checkpointed seq      |
//! | `GET /ledger/:name` | —                      | balance               |
//! | `GET /ledger`     | —                        | all balances          |
//! | `GET /health`     | — (served lock-free on the reactor) | liveness + seq + uptime |
//! | `GET /metrics`    | — (served lock-free on the reactor) | Prometheus text |
//! | `GET /trace`      | — (served lock-free on the reactor) | recent span ring |

use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use polling::{Interest, Poller, Waker};

use crate::command::{Command, LicenseSpec};
use crate::error::ServiceError;
use crate::http::{Request, Response};
use crate::node::ServiceNode;
use crate::reactor::{apply_worker, Reactor, TOKEN_LISTENER, TOKEN_WAKER};
use crate::wire::Json;

/// What the gateway serves: the reactor and its apply pool are generic
/// over this, so the same evented HTTP stack fronts both the public
/// coordinator surface ([`ServiceNode`]) and the internal worker RPC
/// surface ([`WorkerNode`](crate::worker::WorkerNode)).
pub trait Service: Send + Sync + 'static {
    /// Handle one request on an apply-pool thread. May block (locks,
    /// journal fsync, round execution).
    fn handle(&self, req: &Request) -> Response;

    /// Handle a request *inline on the reactor thread*, or `None` to
    /// dispatch it to the pool. Implementations must never wait on a
    /// lock another request path can hold — an inline stall parks
    /// every connection the reactor multiplexes.
    fn handle_inline(&self, req: &Request) -> Option<Response>;
}

impl Service for ServiceNode {
    fn handle(&self, req: &Request) -> Response {
        route(self, req)
    }

    fn handle_inline(&self, req: &Request) -> Option<Response> {
        // Lock-free observability endpoints: /health reads a cached
        // body keyed on atomics, /metrics takes only the registry map
        // mutex, /trace snapshots the span ring — never the apply/WAL
        // lock, so a round running on the pool cannot stall them.
        if req.method == "GET" && matches!(req.path.as_str(), "/health" | "/metrics" | "/trace") {
            return Some(route(self, req));
        }
        None
    }
}

/// Gateway deployment knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Apply-pool size: threads executing journaled commands off the
    /// reactor. Connections shard across them by token, so one
    /// connection's commands always apply in the order it sent them.
    pub workers: usize,
    /// Maximum accepted request body, in bytes.
    pub max_body: usize,
    /// Idle timeout: a connection with no traffic and no work in
    /// flight for this long is closed by the reactor's timer wheel.
    pub read_timeout: Duration,
    /// Pipelining depth: requests in flight per connection before the
    /// reactor stops reading that socket.
    pub max_pipeline: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_body: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            max_pipeline: 128,
        }
    }
}

/// A running gateway; dropping it (or calling [`Gateway::shutdown`])
/// stops the reactor and joins the apply workers.
pub struct Gateway {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Bind and start serving `node` (the public market surface).
    pub fn serve(node: Arc<ServiceNode>, cfg: GatewayConfig) -> std::io::Result<Gateway> {
        Self::serve_service(node, cfg)
    }

    /// Bind and start serving any [`Service`] — the same reactor +
    /// apply-pool stack fronts worker replicas too.
    pub fn serve_service(svc: Arc<dyn Service>, cfg: GatewayConfig) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = cfg.workers.max(1);

        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new()?);
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(waker.fd(), TOKEN_WAKER, Interest::READ)?;

        let (completion_tx, completion_rx) = channel();
        let mut job_txs = Vec::with_capacity(workers);
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel();
            job_txs.push(tx);
            let svc = Arc::clone(&svc);
            let completions = completion_tx.clone();
            let waker = Arc::clone(&waker);
            worker_handles.push(std::thread::spawn(move || {
                apply_worker(svc, rx, completions, waker)
            }));
        }
        drop(completion_tx); // reactor-side receiver sees EOF at teardown

        let reactor = Reactor {
            cfg: cfg.clone(),
            svc,
            poller,
            waker: Arc::clone(&waker),
            listener,
            job_txs,
            completions: completion_rx,
            stop: Arc::clone(&stop),
        };
        let reactor = std::thread::spawn(move || reactor.run());

        Ok(Gateway {
            addr,
            stop,
            waker,
            reactor: Some(reactor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight work, join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.reactor.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        // The reactor dropped its job senders on exit; workers drain
        // their queues and return.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

pub(crate) fn err_body(msg: &str) -> String {
    Json::obj([("error", Json::str(msg))]).dump()
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::json(400, err_body("body is not UTF-8")))?;
    Json::parse(text).map_err(|e| Response::json(400, err_body(&e.to_string())))
}

fn apply_response(result: Result<crate::shard::Outcome, ServiceError>) -> Response {
    match result {
        Ok(outcome) => Response::json(200, outcome.to_json().dump()),
        Err(ServiceError::Rejected(msg)) => Response::json(400, err_body(&msg)),
        Err(ServiceError::Wire(e)) => Response::json(400, err_body(&e.to_string())),
        Err(ServiceError::Io(e)) => {
            Response::json(500, err_body(&format!("journal write failed: {e}")))
        }
    }
}

pub(crate) fn route(node: &ServiceNode, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        // Served inline on the reactor thread. The body is cached on
        // the node and only re-rendered when a reported counter (or
        // the decisecond of uptime) changes — the health path never
        // waits on the apply/WAL lock, so a round running on the pool
        // cannot stall it.
        ("GET", "/health") => Response::json(200, node.health_body()),
        // Prometheus text exposition. Rendering snapshots every handle
        // under the registry's own map mutex only — never the node's
        // apply/WAL lock — so the reactor serves this inline.
        ("GET", "/metrics") => Response::text(
            200,
            dmp_telemetry::global().render_prometheus(),
            "text/plain; version=0.0.4",
        ),
        // The recent span ring (lossy by design; `dropped` counts what
        // contention discarded).
        ("GET", "/trace") => Response::json(200, dmp_telemetry::tracer().to_json()),
        ("GET", "/ledger") => {
            let balances = node.router().all_balances();
            Response::json(
                200,
                Json::obj([(
                    "balances",
                    Json::Obj(
                        balances
                            .into_iter()
                            .map(|(name, bal)| (name, Json::Num(bal)))
                            .collect(),
                    ),
                )])
                .dump(),
            )
        }
        ("GET", path) if path.starts_with("/ledger/") => {
            let name = &path["/ledger/".len()..];
            if name.is_empty() || !node.router().participant_exists(name) {
                return Response::json(404, err_body("unknown account"));
            }
            Response::json(
                200,
                Json::obj([
                    ("account", Json::str(name)),
                    ("balance", Json::Num(node.router().balance(name))),
                    ("shard", Json::Num(node.router().shard_of(name) as f64)),
                ])
                .dump(),
            )
        }
        ("POST", "/enroll") => {
            let body = match parse_body(req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            let name = match body.req_str("name") {
                Ok(n) => n,
                Err(e) => return Response::json(400, err_body(&e.to_string())),
            };
            let role = body
                .get("role")
                .and_then(Json::as_str)
                .unwrap_or("participant")
                .to_string();
            // Validate the optional enrollment deposit *before* any
            // command applies: an invalid amount must not leave a
            // half-done enroll-without-deposit behind.
            let deposit = match body.get("deposit") {
                None => None,
                Some(j) => match j.as_f64() {
                    Some(a)
                        if a.is_finite()
                            && (0.0..=dmp_core::arbiter::ledger::MAX_AMOUNT).contains(&a) =>
                    {
                        Some(a)
                    }
                    _ => {
                        return Response::json(
                            400,
                            err_body(&format!(
                                "'deposit' must be a non-negative number <= {}",
                                dmp_core::arbiter::ledger::MAX_AMOUNT
                            )),
                        )
                    }
                },
            };
            let enroll = node.apply(Command::Enroll {
                name: name.clone(),
                role,
            });
            let shard = match &enroll {
                Ok(crate::shard::Outcome::Enrolled { shard, .. }) => *shard,
                _ => return apply_response(enroll),
            };
            // The deposit is a second journaled command; the response
            // reports both outcomes (enrollment + resulting balance).
            if let Some(amount) = deposit {
                match node.apply(Command::Deposit {
                    account: name.clone(),
                    amount,
                }) {
                    Ok(crate::shard::Outcome::Deposited { balance, .. }) => {
                        return Response::json(
                            200,
                            Json::obj([
                                ("enrolled", Json::str(name)),
                                ("shard", Json::Num(shard as f64)),
                                ("balance", Json::Num(balance)),
                            ])
                            .dump(),
                        );
                    }
                    other => return apply_response(other),
                }
            }
            apply_response(enroll)
        }
        ("POST", "/deposits") => {
            let body = match parse_body(req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            let cmd = match (body.req_str("account"), body.req_f64("amount")) {
                (Ok(account), Ok(amount)) => Command::Deposit { account, amount },
                (Err(e), _) | (_, Err(e)) => return Response::json(400, err_body(&e.to_string())),
            };
            apply_response(node.apply(cmd))
        }
        ("POST", "/offers") => {
            let body = match parse_body(req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            // Reuse the command decoder: an offer body is the command
            // object minus the "op" discriminator.
            let mut with_op = vec![("op".to_string(), Json::str("offer"))];
            if let Json::Obj(pairs) = body {
                with_op.extend(pairs);
            }
            match Command::decode(&Json::Obj(with_op)) {
                Ok(cmd @ Command::SubmitOffer(_)) => apply_response(node.apply(cmd)),
                Ok(_) => Response::json(400, err_body("not an offer body")),
                Err(e) => Response::json(400, err_body(&e.to_string())),
            }
        }
        ("POST", "/asks") => {
            let body = match parse_body(req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            let mut with_op = vec![("op".to_string(), Json::str("ask"))];
            if let Json::Obj(pairs) = body {
                with_op.extend(pairs);
            }
            match Command::decode(&Json::Obj(with_op)) {
                Ok(cmd @ Command::SubmitAsk(_)) => apply_response(node.apply(cmd)),
                Ok(_) => Response::json(400, err_body("not an ask body")),
                Err(e) => Response::json(400, err_body(&e.to_string())),
            }
        }
        ("POST", "/licenses") => {
            let body = match parse_body(req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            let cmd = match (
                body.req_str("seller"),
                body.req_u64("dataset"),
                body.get("license"),
            ) {
                (Ok(seller), Ok(dataset), Some(license_json)) => {
                    match LicenseSpec::decode(license_json) {
                        Ok(license) => Command::GrantLicense {
                            seller,
                            dataset,
                            license,
                        },
                        Err(e) => return Response::json(400, err_body(&e.to_string())),
                    }
                }
                (Err(e), _, _) | (_, Err(e), _) => {
                    return Response::json(400, err_body(&e.to_string()))
                }
                (_, _, None) => return Response::json(400, err_body("missing field 'license'")),
            };
            apply_response(node.apply(cmd))
        }
        ("POST", "/rounds") => {
            let rounds = if req.body.is_empty() {
                1
            } else {
                let body = match parse_body(req) {
                    Ok(b) => b,
                    Err(resp) => return resp,
                };
                match body.get("rounds") {
                    None => 1,
                    // Strict: a fractional or out-of-range count is an
                    // error, not a silent default.
                    Some(j) => match j.as_u64() {
                        Some(n) => n,
                        None => {
                            return Response::json(
                                400,
                                err_body("'rounds' must be a positive integer"),
                            )
                        }
                    },
                }
            };
            if rounds == 0 || rounds > Command::MAX_ROUNDS_PER_COMMAND {
                return Response::json(
                    400,
                    err_body(&format!(
                        "'rounds' must be in 1..={} (one journaled command blocks \
                         writers while it runs and replays in full on recovery)",
                        Command::MAX_ROUNDS_PER_COMMAND
                    )),
                );
            }
            apply_response(node.apply(Command::RunRound {
                rounds: rounds as u32,
            }))
        }
        ("POST", "/snapshot") => match node.snapshot_now() {
            Ok(seq) => Response::json(
                200,
                Json::obj([("snapshot_seq", Json::Num(seq as f64))]).dump(),
            ),
            Err(e) => Response::json(500, err_body(&e.to_string())),
        },
        ("GET" | "POST", _) => Response::json(404, err_body("unknown route")),
        _ => Response::json(405, err_body("method not allowed")),
    }
}
