//! The network gateway: a multi-threaded `std::net::TcpListener`
//! HTTP/1.1 server with a **bounded worker pool** in front of a
//! [`ServiceNode`].
//!
//! One acceptor thread pushes connections into a bounded channel;
//! `workers` threads drain it, each running a keep-alive request loop.
//! When every worker is busy the channel exerts backpressure on the
//! acceptor instead of spawning unbounded threads.
//!
//! | Endpoint          | Command journaled        | Response              |
//! |-------------------|--------------------------|-----------------------|
//! | `POST /enroll`    | `Enroll` (+ `Deposit`)   | shard assignment      |
//! | `POST /deposits`  | `Deposit`                | new balance           |
//! | `POST /offers`    | `SubmitOffer`            | offer id + shard      |
//! | `POST /asks`      | `SubmitAsk`              | dataset id + shard    |
//! | `POST /licenses`  | `GrantLicense`           | dataset id + shard    |
//! | `POST /rounds`    | `RunRound`               | merged round reports  |
//! | `POST /snapshot`  | — (admin, not a mutation)| checkpointed seq      |
//! | `GET /ledger/:name` | —                      | balance               |
//! | `GET /ledger`     | —                        | all balances          |
//! | `GET /health`     | —                        | liveness + seq        |

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::command::{Command, LicenseSpec};
use crate::error::ServiceError;
use crate::http::{read_request, HttpError, Request, Response};
use crate::node::ServiceNode;
use crate::wire::Json;

/// Gateway deployment knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Worker pool size (bounded; also bounds queued connections).
    pub workers: usize,
    /// Maximum accepted request body, in bytes.
    pub max_body: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_body: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// A running gateway; dropping it (or calling [`Gateway::shutdown`])
/// stops the acceptor and joins the workers.
pub struct Gateway {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Bind and start serving `node`.
    pub fn serve(node: Arc<ServiceNode>, cfg: GatewayConfig) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = cfg.workers.max(1);

        // Bounded hand-off: when all workers are busy and the queue is
        // full, the acceptor blocks instead of buffering without limit.
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) = sync_channel(workers * 2);
        let rx = Arc::new(Mutex::new(rx));

        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let node = Arc::clone(&node);
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            worker_handles.push(std::thread::spawn(move || loop {
                let stream = {
                    let guard = rx.lock();
                    guard.recv()
                };
                match stream {
                    Ok(stream) => serve_connection(&node, stream, &cfg, &stop),
                    Err(_) => return, // acceptor gone: shutdown
                }
            }));
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            if tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // tx drops here; workers drain the queue and exit.
            })
        };

        Ok(Gateway {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight connections, join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// How often an idle keep-alive connection re-checks the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

fn serve_connection(node: &ServiceNode, stream: TcpStream, cfg: &GatewayConfig, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut idle = Duration::ZERO;
    loop {
        // Shutdown check between requests — a busy keep-alive client
        // must not pin this worker past Gateway::shutdown.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Idle wait between requests: a short socket timeout so the
        // loop notices shutdown promptly. Parsing only starts once
        // bytes are buffered, so an idle timeout can never discard a
        // partially-read request.
        let _ = writer.set_read_timeout(Some(IDLE_POLL));
        use std::io::BufRead;
        match reader.fill_buf() {
            Ok([]) => return, // clean EOF
            Ok(_) => idle = Duration::ZERO,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                idle += IDLE_POLL;
                if stop.load(Ordering::SeqCst) || idle >= cfg.read_timeout {
                    return;
                }
                continue;
            }
            Err(_) => return, // reset / broken pipe
        }
        // A request is in flight: give it the full read timeout; any
        // stall or error mid-request closes the connection (resuming
        // would desync the stream).
        let _ = writer.set_read_timeout(Some(cfg.read_timeout));
        match read_request(&mut reader, cfg.max_body) {
            Ok(req) => {
                let keep_alive = !req.wants_close();
                let response = route(node, &req);
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(HttpError::Eof) => return,
            Err(HttpError::TooLarge) => {
                let _ = Response::json(413, err_body("request body too large"))
                    .write_to(&mut writer, false);
                return;
            }
            Err(HttpError::Malformed(msg)) => {
                let _ = Response::json(400, err_body(&msg)).write_to(&mut writer, false);
                return;
            }
            Err(HttpError::Io(_)) => return,
        }
    }
}

fn err_body(msg: &str) -> String {
    Json::obj([("error", Json::str(msg))]).dump()
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::json(400, err_body("body is not UTF-8")))?;
    Json::parse(text).map_err(|e| Response::json(400, err_body(&e.to_string())))
}

fn apply_response(result: Result<crate::shard::Outcome, ServiceError>) -> Response {
    match result {
        Ok(outcome) => Response::json(200, outcome.to_json().dump()),
        Err(ServiceError::Rejected(msg)) => Response::json(400, err_body(&msg)),
        Err(ServiceError::Wire(e)) => Response::json(400, err_body(&e.to_string())),
        Err(ServiceError::Io(e)) => {
            Response::json(500, err_body(&format!("journal write failed: {e}")))
        }
    }
}

fn route(node: &ServiceNode, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => Response::json(
            200,
            Json::obj([
                ("status", Json::str("ok")),
                ("shards", Json::Num(node.router().shard_count() as f64)),
                ("applied", Json::Num(node.applied() as f64)),
                ("round", Json::Num(node.router().shard(0).round() as f64)),
            ])
            .dump(),
        ),
        ("GET", "/ledger") => {
            let balances = node.router().all_balances();
            Response::json(
                200,
                Json::obj([(
                    "balances",
                    Json::Obj(
                        balances
                            .into_iter()
                            .map(|(name, bal)| (name, Json::Num(bal)))
                            .collect(),
                    ),
                )])
                .dump(),
            )
        }
        ("GET", path) if path.starts_with("/ledger/") => {
            let name = &path["/ledger/".len()..];
            if name.is_empty() || !node.router().participant_exists(name) {
                return Response::json(404, err_body("unknown account"));
            }
            Response::json(
                200,
                Json::obj([
                    ("account", Json::str(name)),
                    ("balance", Json::Num(node.router().balance(name))),
                    ("shard", Json::Num(node.router().shard_of(name) as f64)),
                ])
                .dump(),
            )
        }
        ("POST", "/enroll") => {
            let body = match parse_body(req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            let name = match body.req_str("name") {
                Ok(n) => n,
                Err(e) => return Response::json(400, err_body(&e.to_string())),
            };
            let role = body
                .get("role")
                .and_then(Json::as_str)
                .unwrap_or("participant")
                .to_string();
            // Validate the optional enrollment deposit *before* any
            // command applies: an invalid amount must not leave a
            // half-done enroll-without-deposit behind.
            let deposit = match body.get("deposit") {
                None => None,
                Some(j) => match j.as_f64() {
                    Some(a)
                        if a.is_finite()
                            && (0.0..=dmp_core::arbiter::ledger::MAX_AMOUNT).contains(&a) =>
                    {
                        Some(a)
                    }
                    _ => {
                        return Response::json(
                            400,
                            err_body(&format!(
                                "'deposit' must be a non-negative number <= {}",
                                dmp_core::arbiter::ledger::MAX_AMOUNT
                            )),
                        )
                    }
                },
            };
            let enroll = node.apply(Command::Enroll {
                name: name.clone(),
                role,
            });
            let shard = match &enroll {
                Ok(crate::shard::Outcome::Enrolled { shard, .. }) => *shard,
                _ => return apply_response(enroll),
            };
            // The deposit is a second journaled command; the response
            // reports both outcomes (enrollment + resulting balance).
            if let Some(amount) = deposit {
                match node.apply(Command::Deposit {
                    account: name.clone(),
                    amount,
                }) {
                    Ok(crate::shard::Outcome::Deposited { balance, .. }) => {
                        return Response::json(
                            200,
                            Json::obj([
                                ("enrolled", Json::str(name)),
                                ("shard", Json::Num(shard as f64)),
                                ("balance", Json::Num(balance)),
                            ])
                            .dump(),
                        );
                    }
                    other => return apply_response(other),
                }
            }
            apply_response(enroll)
        }
        ("POST", "/deposits") => {
            let body = match parse_body(req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            let cmd = match (body.req_str("account"), body.req_f64("amount")) {
                (Ok(account), Ok(amount)) => Command::Deposit { account, amount },
                (Err(e), _) | (_, Err(e)) => return Response::json(400, err_body(&e.to_string())),
            };
            apply_response(node.apply(cmd))
        }
        ("POST", "/offers") => {
            let body = match parse_body(req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            // Reuse the command decoder: an offer body is the command
            // object minus the "op" discriminator.
            let mut with_op = vec![("op".to_string(), Json::str("offer"))];
            if let Json::Obj(pairs) = body {
                with_op.extend(pairs);
            }
            match Command::decode(&Json::Obj(with_op)) {
                Ok(cmd @ Command::SubmitOffer(_)) => apply_response(node.apply(cmd)),
                Ok(_) => Response::json(400, err_body("not an offer body")),
                Err(e) => Response::json(400, err_body(&e.to_string())),
            }
        }
        ("POST", "/asks") => {
            let body = match parse_body(req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            let mut with_op = vec![("op".to_string(), Json::str("ask"))];
            if let Json::Obj(pairs) = body {
                with_op.extend(pairs);
            }
            match Command::decode(&Json::Obj(with_op)) {
                Ok(cmd @ Command::SubmitAsk(_)) => apply_response(node.apply(cmd)),
                Ok(_) => Response::json(400, err_body("not an ask body")),
                Err(e) => Response::json(400, err_body(&e.to_string())),
            }
        }
        ("POST", "/licenses") => {
            let body = match parse_body(req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            let cmd = match (
                body.req_str("seller"),
                body.req_u64("dataset"),
                body.get("license"),
            ) {
                (Ok(seller), Ok(dataset), Some(license_json)) => {
                    match LicenseSpec::decode(license_json) {
                        Ok(license) => Command::GrantLicense {
                            seller,
                            dataset,
                            license,
                        },
                        Err(e) => return Response::json(400, err_body(&e.to_string())),
                    }
                }
                (Err(e), _, _) | (_, Err(e), _) => {
                    return Response::json(400, err_body(&e.to_string()))
                }
                (_, _, None) => return Response::json(400, err_body("missing field 'license'")),
            };
            apply_response(node.apply(cmd))
        }
        ("POST", "/rounds") => {
            let rounds = if req.body.is_empty() {
                1
            } else {
                let body = match parse_body(req) {
                    Ok(b) => b,
                    Err(resp) => return resp,
                };
                match body.get("rounds") {
                    None => 1,
                    // Strict: a fractional or out-of-range count is an
                    // error, not a silent default.
                    Some(j) => match j.as_u64() {
                        Some(n) => n,
                        None => {
                            return Response::json(
                                400,
                                err_body("'rounds' must be a positive integer"),
                            )
                        }
                    },
                }
            };
            if rounds == 0 || rounds > Command::MAX_ROUNDS_PER_COMMAND {
                return Response::json(
                    400,
                    err_body(&format!(
                        "'rounds' must be in 1..={} (one journaled command blocks \
                         writers while it runs and replays in full on recovery)",
                        Command::MAX_ROUNDS_PER_COMMAND
                    )),
                );
            }
            apply_response(node.apply(Command::RunRound {
                rounds: rounds as u32,
            }))
        }
        ("POST", "/snapshot") => match node.snapshot_now() {
            Ok(seq) => Response::json(
                200,
                Json::obj([("snapshot_seq", Json::Num(seq as f64))]).dump(),
            ),
            Err(e) => Response::json(500, err_body(&e.to_string())),
        },
        ("GET" | "POST", _) => Response::json(404, err_body("unknown route")),
        _ => Response::json(405, err_body("method not allowed")),
    }
}
