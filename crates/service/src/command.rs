//! Externally-visible market mutations as serializable [`Command`]s.
//!
//! Every mutation the gateway accepts becomes exactly one `Command`,
//! appended to the write-ahead journal *before* it is applied to the
//! sharded market (event sourcing). Because PR 1 made the round
//! pipeline bit-identical under replay, re-applying a journaled command
//! stream to a freshly-deployed market reproduces the exact ledger
//! balances, offer book and allocations — that determinism is what the
//! crash-recovery tests pin down.

use dmp_core::license::License;
use dmp_mechanism::wtp::{IntrinsicConstraints, PriceCurve, TaskKind, WtpFunction};
use dmp_relation::{DataType, Relation, RelationBuilder, Value};

use crate::wire::{Json, WireError};

/// One externally-visible market mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Enroll a participant under a role.
    Enroll {
        /// Principal name.
        name: String,
        /// Role ("buyer", "seller", ... — matched by CI policies).
        role: String,
    },
    /// Mint funds into an account.
    Deposit {
        /// Account name.
        account: String,
        /// Amount in credits (micro-credit rounded by the ledger).
        amount: f64,
    },
    /// Submit a buyer WTP offer.
    SubmitOffer(OfferSpec),
    /// Submit a seller ask: share a dataset, optionally with a reserve
    /// price and a license.
    SubmitAsk(AskSpec),
    /// Attach a license to an already-shared dataset.
    GrantLicense {
        /// The owning seller.
        seller: String,
        /// Dataset id (shard-local; the seller's shard is derived from
        /// the seller name, the same routing that registered it).
        dataset: u64,
        /// The license to attach.
        license: LicenseSpec,
    },
    /// Run one or more market rounds across every shard.
    RunRound {
        /// Number of rounds (>= 1).
        rounds: u32,
    },
}

/// Wire form of a WTP offer.
#[derive(Debug, Clone, PartialEq)]
pub struct OfferSpec {
    /// Buyer principal.
    pub buyer: String,
    /// Attributes the buyer needs.
    pub attributes: Vec<String>,
    /// Optional discovery keywords.
    pub keywords: Vec<String>,
    /// The data task.
    pub task: TaskSpec,
    /// satisfaction → price curve.
    pub curve: CurveSpec,
    /// Minimum rows for a usable mashup.
    pub min_rows: u64,
    /// Declared purpose (contextual integrity).
    pub purpose: String,
}

/// Wire form of a seller ask.
#[derive(Debug, Clone, PartialEq)]
pub struct AskSpec {
    /// Seller principal.
    pub seller: String,
    /// The dataset, inline.
    pub table: TableSpec,
    /// Reserve price floor (optional).
    pub reserve: Option<f64>,
    /// License to attach at share time (optional; Standard otherwise).
    pub license: Option<LicenseSpec>,
}

/// An inline relation: name, typed columns, rows of scalar cells.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Relation name.
    pub name: String,
    /// `(column, type)` pairs; types are `"int" | "float" | "str" |
    /// "bool" | "timestamp"`.
    pub columns: Vec<(String, ColType)>,
    /// Rows; each cell is decoded against its column type.
    pub rows: Vec<Vec<CellSpec>>,
}

/// Wire-supported column types (the 1NF scalar subset of
/// [`dmp_relation::DataType`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
    /// Unix-epoch timestamps.
    Timestamp,
}

/// A scalar cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellSpec {
    /// Absent value.
    Null,
    /// Integer cell (int / timestamp columns).
    Int(i64),
    /// Float cell.
    Float(f64),
    /// String cell.
    Str(String),
    /// Bool cell.
    Bool(bool),
}

/// Wire form of a task package.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskSpec {
    /// Fraction of requested attributes present.
    AttributeCoverage,
    /// Held-out classifier accuracy on `label`.
    Classification {
        /// Label column.
        label: String,
    },
    /// Clamped R² on `target`.
    Regression {
        /// Target column.
        target: String,
    },
    /// Group coverage of a group-by query.
    AggregateCompleteness {
        /// Group-by column.
        group_by: String,
        /// Expected distinct groups.
        expected_groups: u64,
    },
}

/// Wire form of a price curve.
#[derive(Debug, Clone, PartialEq)]
pub enum CurveSpec {
    /// Constant price.
    Constant(f64),
    /// Linear above a satisfaction floor.
    Linear {
        /// Satisfaction below which the buyer pays nothing.
        min_satisfaction: f64,
        /// Price at satisfaction 1.0.
        max_price: f64,
    },
    /// Ascending step thresholds.
    Step(Vec<(f64, f64)>),
}

/// Wire form of a data license.
#[derive(Debug, Clone, PartialEq)]
pub enum LicenseSpec {
    /// Non-exclusive use, no resale.
    Standard,
    /// Exclusive access with a price uplift.
    Exclusive {
        /// Uplift fraction.
        tax_rate: f64,
        /// Exclusivity duration in rounds.
        hold_rounds: u32,
    },
    /// Full ownership transfer (resale allowed).
    OwnershipTransfer,
    /// No re-sharing, even of derived data.
    NonTransferable,
}

impl Command {
    /// Upper bound on `RunRound::rounds` in one command: a round batch
    /// executes while holding the node's write path and replays in
    /// full on recovery, so a single command must stay bounded.
    pub const MAX_ROUNDS_PER_COMMAND: u64 = 1024;

    /// Encode to the wire JSON form (`{"op": ..., ...}`).
    pub fn encode(&self) -> Json {
        match self {
            Command::Enroll { name, role } => Json::obj([
                ("op", Json::str("enroll")),
                ("name", Json::str(name.clone())),
                ("role", Json::str(role.clone())),
            ]),
            Command::Deposit { account, amount } => Json::obj([
                ("op", Json::str("deposit")),
                ("account", Json::str(account.clone())),
                ("amount", Json::Num(*amount)),
            ]),
            Command::SubmitOffer(o) => Json::obj([
                ("op", Json::str("offer")),
                ("buyer", Json::str(o.buyer.clone())),
                (
                    "attributes",
                    Json::Arr(o.attributes.iter().map(|s| Json::str(s.clone())).collect()),
                ),
                (
                    "keywords",
                    Json::Arr(o.keywords.iter().map(|s| Json::str(s.clone())).collect()),
                ),
                ("task", o.task.encode()),
                ("curve", o.curve.encode()),
                ("min_rows", Json::Num(o.min_rows as f64)),
                ("purpose", Json::str(o.purpose.clone())),
            ]),
            Command::SubmitAsk(a) => {
                let mut pairs = vec![
                    ("op".to_string(), Json::str("ask")),
                    ("seller".to_string(), Json::str(a.seller.clone())),
                    ("table".to_string(), a.table.encode()),
                ];
                if let Some(r) = a.reserve {
                    pairs.push(("reserve".to_string(), Json::Num(r)));
                }
                if let Some(l) = &a.license {
                    pairs.push(("license".to_string(), l.encode()));
                }
                Json::Obj(pairs)
            }
            Command::GrantLicense {
                seller,
                dataset,
                license,
            } => Json::obj([
                ("op", Json::str("grant_license")),
                ("seller", Json::str(seller.clone())),
                ("dataset", Json::Num(*dataset as f64)),
                ("license", license.encode()),
            ]),
            Command::RunRound { rounds } => Json::obj([
                ("op", Json::str("run_round")),
                ("rounds", Json::Num(*rounds as f64)),
            ]),
        }
    }

    /// Decode from the wire JSON form.
    pub fn decode(json: &Json) -> Result<Command, WireError> {
        let op = json.req_str("op")?;
        match op.as_str() {
            "enroll" => Ok(Command::Enroll {
                name: json.req_str("name")?,
                role: json.req_str("role")?,
            }),
            "deposit" => Ok(Command::Deposit {
                account: json.req_str("account")?,
                amount: json.req_f64("amount")?,
            }),
            "offer" => Ok(Command::SubmitOffer(OfferSpec::decode(json)?)),
            "ask" => Ok(Command::SubmitAsk(AskSpec::decode(json)?)),
            "grant_license" => Ok(Command::GrantLicense {
                seller: json.req_str("seller")?,
                dataset: json.req_u64("dataset")?,
                license: LicenseSpec::decode(
                    json.get("license")
                        .ok_or_else(|| WireError::new("missing field 'license'"))?,
                )?,
            }),
            "run_round" => {
                let rounds = json.req_u64("rounds")?;
                if rounds == 0 || rounds > Command::MAX_ROUNDS_PER_COMMAND {
                    return Err(WireError::new(format!(
                        "'rounds' must be in 1..={}",
                        Command::MAX_ROUNDS_PER_COMMAND
                    )));
                }
                Ok(Command::RunRound {
                    rounds: rounds as u32,
                })
            }
            other => Err(WireError::new(format!("unknown op '{other}'"))),
        }
    }
}

fn str_list(items: &[Json]) -> Result<Vec<String>, WireError> {
    items
        .iter()
        .map(|j| {
            j.as_str()
                .map(str::to_string)
                .ok_or_else(|| WireError::new("expected string in list"))
        })
        .collect()
}

impl OfferSpec {
    /// A minimal attribute-coverage offer with a constant price.
    pub fn simple(
        buyer: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
        price: f64,
    ) -> Self {
        OfferSpec {
            buyer: buyer.into(),
            attributes: attributes.into_iter().map(Into::into).collect(),
            keywords: Vec::new(),
            task: TaskSpec::AttributeCoverage,
            curve: CurveSpec::Constant(price),
            min_rows: 1,
            purpose: "analytics".to_string(),
        }
    }

    fn decode(json: &Json) -> Result<OfferSpec, WireError> {
        Ok(OfferSpec {
            buyer: json.req_str("buyer")?,
            attributes: str_list(json.req_arr("attributes")?)?,
            keywords: match json.get("keywords") {
                Some(j) => str_list(
                    j.as_arr()
                        .ok_or_else(|| WireError::new("'keywords' must be an array"))?,
                )?,
                None => Vec::new(),
            },
            task: match json.get("task") {
                Some(j) => TaskSpec::decode(j)?,
                None => TaskSpec::AttributeCoverage,
            },
            curve: CurveSpec::decode(
                json.get("curve")
                    .ok_or_else(|| WireError::new("missing field 'curve'"))?,
            )?,
            // Strict: a present-but-invalid field is an error, never a
            // silent default (the journaled command must mean what the
            // client said).
            min_rows: match json.get("min_rows") {
                None => 1,
                Some(j) => j
                    .as_u64()
                    .ok_or_else(|| WireError::new("'min_rows' must be a non-negative integer"))?,
            },
            purpose: match json.get("purpose") {
                None => "analytics".to_string(),
                Some(j) => j
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| WireError::new("'purpose' must be a string"))?,
            },
        })
    }

    /// Materialize into a core [`WtpFunction`].
    pub fn to_wtp(&self) -> WtpFunction {
        WtpFunction {
            buyer: self.buyer.clone(),
            attributes: self.attributes.clone(),
            keywords: self.keywords.clone(),
            task: self.task.to_task_kind(),
            curve: self.curve.to_price_curve(),
            constraints: IntrinsicConstraints::default(),
            owned_data: None,
            min_rows: self.min_rows as usize,
        }
    }
}

impl AskSpec {
    fn decode(json: &Json) -> Result<AskSpec, WireError> {
        Ok(AskSpec {
            seller: json.req_str("seller")?,
            table: TableSpec::decode(
                json.get("table")
                    .ok_or_else(|| WireError::new("missing field 'table'"))?,
            )?,
            reserve: match json.get("reserve") {
                None => None,
                Some(j) => Some(
                    j.as_f64()
                        .filter(|r| r.is_finite())
                        .ok_or_else(|| WireError::new("'reserve' must be a finite number"))?,
                ),
            },
            license: match json.get("license") {
                Some(j) => Some(LicenseSpec::decode(j)?),
                None => None,
            },
        })
    }
}

impl ColType {
    fn as_str(self) -> &'static str {
        match self {
            ColType::Int => "int",
            ColType::Float => "float",
            ColType::Str => "str",
            ColType::Bool => "bool",
            ColType::Timestamp => "timestamp",
        }
    }

    fn from_str(s: &str) -> Result<ColType, WireError> {
        match s {
            "int" => Ok(ColType::Int),
            "float" => Ok(ColType::Float),
            "str" => Ok(ColType::Str),
            "bool" => Ok(ColType::Bool),
            "timestamp" => Ok(ColType::Timestamp),
            other => Err(WireError::new(format!("unknown column type '{other}'"))),
        }
    }

    fn to_data_type(self) -> DataType {
        match self {
            ColType::Int => DataType::Int,
            ColType::Float => DataType::Float,
            ColType::Str => DataType::Str,
            ColType::Bool => DataType::Bool,
            ColType::Timestamp => DataType::Timestamp,
        }
    }
}

impl CellSpec {
    fn encode(&self) -> Json {
        match self {
            CellSpec::Null => Json::Null,
            CellSpec::Int(i) => Json::Num(*i as f64),
            CellSpec::Float(f) => Json::Num(*f),
            CellSpec::Str(s) => Json::str(s.clone()),
            CellSpec::Bool(b) => Json::Bool(*b),
        }
    }

    fn decode(json: &Json, col: ColType) -> Result<CellSpec, WireError> {
        match (json, col) {
            (Json::Null, _) => Ok(CellSpec::Null),
            (Json::Num(n), ColType::Int | ColType::Timestamp) => {
                if n.fract() != 0.0 || n.abs() > 2f64.powi(53) {
                    return Err(WireError::new("expected integer cell"));
                }
                Ok(CellSpec::Int(*n as i64))
            }
            (Json::Num(n), ColType::Float) => Ok(CellSpec::Float(*n)),
            (Json::Str(s), ColType::Str) => Ok(CellSpec::Str(s.clone())),
            (Json::Bool(b), ColType::Bool) => Ok(CellSpec::Bool(*b)),
            _ => Err(WireError::new(format!(
                "cell does not match column type '{}'",
                col.as_str()
            ))),
        }
    }

    fn to_value(&self, col: ColType) -> Value {
        match (self, col) {
            (CellSpec::Null, _) => Value::Null,
            (CellSpec::Int(i), ColType::Timestamp) => Value::Timestamp(*i),
            (CellSpec::Int(i), _) => Value::Int(*i),
            (CellSpec::Float(f), _) => Value::Float(*f),
            (CellSpec::Str(s), _) => Value::str(s),
            (CellSpec::Bool(b), _) => Value::Bool(*b),
        }
    }
}

impl TableSpec {
    fn encode(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name.clone())),
            (
                "columns",
                Json::Arr(
                    self.columns
                        .iter()
                        .map(|(name, ty)| {
                            Json::Arr(vec![Json::str(name.clone()), Json::str(ty.as_str())])
                        })
                        .collect(),
                ),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(CellSpec::encode).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    fn decode(json: &Json) -> Result<TableSpec, WireError> {
        let name = json.req_str("name")?;
        let mut columns = Vec::new();
        for col in json.req_arr("columns")? {
            let pair = col
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| WireError::new("column must be a [name, type] pair"))?;
            let cname = pair[0]
                .as_str()
                .ok_or_else(|| WireError::new("column name must be a string"))?;
            let ctype = pair[1]
                .as_str()
                .ok_or_else(|| WireError::new("column type must be a string"))?;
            columns.push((cname.to_string(), ColType::from_str(ctype)?));
        }
        let mut rows = Vec::new();
        for row in json.req_arr("rows")? {
            let cells = row
                .as_arr()
                .ok_or_else(|| WireError::new("row must be an array"))?;
            if cells.len() != columns.len() {
                return Err(WireError::new(format!(
                    "row has {} cells, schema has {} columns",
                    cells.len(),
                    columns.len()
                )));
            }
            rows.push(
                cells
                    .iter()
                    .zip(&columns)
                    .map(|(cell, (_, ty))| CellSpec::decode(cell, *ty))
                    .collect::<Result<Vec<_>, _>>()?,
            );
        }
        Ok(TableSpec {
            name,
            columns,
            rows,
        })
    }

    /// Materialize into a core [`Relation`].
    pub fn to_relation(&self) -> Result<Relation, WireError> {
        let mut b = RelationBuilder::new(self.name.clone());
        for (name, ty) in &self.columns {
            b = b.column(name.clone(), ty.to_data_type());
        }
        for row in &self.rows {
            b = b.row(
                row.iter()
                    .zip(&self.columns)
                    .map(|(cell, (_, ty))| cell.to_value(*ty))
                    .collect(),
            );
        }
        b.build()
            .map_err(|e| WireError::new(format!("invalid table: {e:?}")))
    }
}

impl TaskSpec {
    fn encode(&self) -> Json {
        match self {
            TaskSpec::AttributeCoverage => Json::obj([("kind", Json::str("attribute_coverage"))]),
            TaskSpec::Classification { label } => Json::obj([
                ("kind", Json::str("classification")),
                ("label", Json::str(label.clone())),
            ]),
            TaskSpec::Regression { target } => Json::obj([
                ("kind", Json::str("regression")),
                ("target", Json::str(target.clone())),
            ]),
            TaskSpec::AggregateCompleteness {
                group_by,
                expected_groups,
            } => Json::obj([
                ("kind", Json::str("aggregate_completeness")),
                ("group_by", Json::str(group_by.clone())),
                ("expected_groups", Json::Num(*expected_groups as f64)),
            ]),
        }
    }

    fn decode(json: &Json) -> Result<TaskSpec, WireError> {
        match json.req_str("kind")?.as_str() {
            "attribute_coverage" => Ok(TaskSpec::AttributeCoverage),
            "classification" => Ok(TaskSpec::Classification {
                label: json.req_str("label")?,
            }),
            "regression" => Ok(TaskSpec::Regression {
                target: json.req_str("target")?,
            }),
            "aggregate_completeness" => Ok(TaskSpec::AggregateCompleteness {
                group_by: json.req_str("group_by")?,
                expected_groups: json.req_u64("expected_groups")?,
            }),
            other => Err(WireError::new(format!("unknown task kind '{other}'"))),
        }
    }

    fn to_task_kind(&self) -> TaskKind {
        match self {
            TaskSpec::AttributeCoverage => TaskKind::AttributeCoverage,
            TaskSpec::Classification { label } => TaskKind::Classification {
                label: label.clone(),
            },
            TaskSpec::Regression { target } => TaskKind::Regression {
                target: target.clone(),
            },
            TaskSpec::AggregateCompleteness {
                group_by,
                expected_groups,
            } => TaskKind::AggregateCompleteness {
                group_by: group_by.clone(),
                expected_groups: *expected_groups as usize,
            },
        }
    }
}

impl CurveSpec {
    fn encode(&self) -> Json {
        match self {
            CurveSpec::Constant(p) => {
                Json::obj([("kind", Json::str("constant")), ("price", Json::Num(*p))])
            }
            CurveSpec::Linear {
                min_satisfaction,
                max_price,
            } => Json::obj([
                ("kind", Json::str("linear")),
                ("min_satisfaction", Json::Num(*min_satisfaction)),
                ("max_price", Json::Num(*max_price)),
            ]),
            CurveSpec::Step(steps) => Json::obj([
                ("kind", Json::str("step")),
                (
                    "steps",
                    Json::Arr(
                        steps
                            .iter()
                            .map(|&(t, p)| Json::Arr(vec![Json::Num(t), Json::Num(p)]))
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    fn decode(json: &Json) -> Result<CurveSpec, WireError> {
        match json.req_str("kind")?.as_str() {
            "constant" => Ok(CurveSpec::Constant(json.req_f64("price")?)),
            "linear" => Ok(CurveSpec::Linear {
                min_satisfaction: json.req_f64("min_satisfaction")?,
                max_price: json.req_f64("max_price")?,
            }),
            "step" => {
                let mut steps = Vec::new();
                for step in json.req_arr("steps")? {
                    let pair = step.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        WireError::new("step must be a [satisfaction, price] pair")
                    })?;
                    let t = pair[0]
                        .as_f64()
                        .ok_or_else(|| WireError::new("step threshold must be a number"))?;
                    let p = pair[1]
                        .as_f64()
                        .ok_or_else(|| WireError::new("step price must be a number"))?;
                    steps.push((t, p));
                }
                Ok(CurveSpec::Step(steps))
            }
            other => Err(WireError::new(format!("unknown curve kind '{other}'"))),
        }
    }

    fn to_price_curve(&self) -> PriceCurve {
        match self {
            CurveSpec::Constant(p) => PriceCurve::Constant(*p),
            CurveSpec::Linear {
                min_satisfaction,
                max_price,
            } => PriceCurve::Linear {
                min_satisfaction: *min_satisfaction,
                max_price: *max_price,
            },
            CurveSpec::Step(steps) => PriceCurve::Step(steps.clone()),
        }
    }
}

impl LicenseSpec {
    pub(crate) fn encode(&self) -> Json {
        match self {
            LicenseSpec::Standard => Json::obj([("kind", Json::str("standard"))]),
            LicenseSpec::Exclusive {
                tax_rate,
                hold_rounds,
            } => Json::obj([
                ("kind", Json::str("exclusive")),
                ("tax_rate", Json::Num(*tax_rate)),
                ("hold_rounds", Json::Num(*hold_rounds as f64)),
            ]),
            LicenseSpec::OwnershipTransfer => {
                Json::obj([("kind", Json::str("ownership_transfer"))])
            }
            LicenseSpec::NonTransferable => Json::obj([("kind", Json::str("non_transferable"))]),
        }
    }

    pub(crate) fn decode(json: &Json) -> Result<LicenseSpec, WireError> {
        match json.req_str("kind")?.as_str() {
            "standard" => Ok(LicenseSpec::Standard),
            "exclusive" => Ok(LicenseSpec::Exclusive {
                tax_rate: json.req_f64("tax_rate")?,
                hold_rounds: u32::try_from(json.req_u64("hold_rounds")?)
                    .map_err(|_| WireError::new("'hold_rounds' exceeds u32 range"))?,
            }),
            "ownership_transfer" => Ok(LicenseSpec::OwnershipTransfer),
            "non_transferable" => Ok(LicenseSpec::NonTransferable),
            other => Err(WireError::new(format!("unknown license kind '{other}'"))),
        }
    }

    /// Materialize into a core [`License`].
    pub fn to_license(&self) -> License {
        match self {
            LicenseSpec::Standard => License::Standard,
            LicenseSpec::Exclusive {
                tax_rate,
                hold_rounds,
            } => License::Exclusive {
                tax_rate: *tax_rate,
                hold_rounds: *hold_rounds,
            },
            LicenseSpec::OwnershipTransfer => License::OwnershipTransfer,
            LicenseSpec::NonTransferable => License::NonTransferable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(cmd: Command) {
        let encoded = cmd.encode().dump();
        let decoded = Command::decode(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, cmd, "wire round-trip changed the command");
    }

    #[test]
    fn commands_round_trip() {
        round_trip(Command::Enroll {
            name: "alice".into(),
            role: "buyer".into(),
        });
        round_trip(Command::Deposit {
            account: "alice".into(),
            amount: 123.456789,
        });
        round_trip(Command::SubmitOffer(OfferSpec {
            buyer: "alice".into(),
            attributes: vec!["city".into(), "temp".into()],
            keywords: vec!["weather".into()],
            task: TaskSpec::AggregateCompleteness {
                group_by: "city".into(),
                expected_groups: 12,
            },
            curve: CurveSpec::Step(vec![(0.8, 100.0), (0.9, 150.0)]),
            min_rows: 3,
            purpose: "research".into(),
        }));
        round_trip(Command::SubmitAsk(AskSpec {
            seller: "weather-co".into(),
            table: TableSpec {
                name: "temps".into(),
                columns: vec![
                    ("city".into(), ColType::Str),
                    ("temp".into(), ColType::Float),
                    ("at".into(), ColType::Timestamp),
                ],
                rows: vec![
                    vec![
                        CellSpec::Str("chicago".into()),
                        CellSpec::Float(3.5),
                        CellSpec::Int(1700000000),
                    ],
                    vec![CellSpec::Null, CellSpec::Null, CellSpec::Null],
                ],
            },
            reserve: Some(5.0),
            license: Some(LicenseSpec::Exclusive {
                tax_rate: 0.5,
                hold_rounds: 3,
            }),
        }));
        round_trip(Command::GrantLicense {
            seller: "weather-co".into(),
            dataset: 0,
            license: LicenseSpec::NonTransferable,
        });
        round_trip(Command::RunRound { rounds: 4 });
    }

    #[test]
    fn table_spec_materializes() {
        let table = TableSpec {
            name: "t".into(),
            columns: vec![("k".into(), ColType::Int), ("v".into(), ColType::Str)],
            rows: vec![
                vec![CellSpec::Int(1), CellSpec::Str("a".into())],
                vec![CellSpec::Int(2), CellSpec::Null],
            ],
        };
        let rel = table.to_relation().unwrap();
        assert_eq!(rel.name(), "t");
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn mistyped_cells_rejected() {
        let json =
            Json::parse(r#"{"name":"t","columns":[["k","int"]],"rows":[["oops"]]}"#).unwrap();
        assert!(TableSpec::decode(&json).is_err());
    }

    #[test]
    fn unknown_op_rejected() {
        let json = Json::parse(r#"{"op":"frobnicate"}"#).unwrap();
        assert!(Command::decode(&json).is_err());
    }

    #[test]
    fn run_round_count_is_bounded() {
        let ok = Json::parse(r#"{"op":"run_round","rounds":1024}"#).unwrap();
        assert!(Command::decode(&ok).is_ok());
        for bad in [
            r#"{"op":"run_round","rounds":0}"#,
            r#"{"op":"run_round","rounds":1025}"#,
            r#"{"op":"run_round","rounds":4000000000}"#,
            r#"{"op":"run_round","rounds":2.5}"#,
        ] {
            let json = Json::parse(bad).unwrap();
            assert!(Command::decode(&json).is_err(), "accepted {bad}");
        }
    }
}
