//! Hand-rolled JSON wire codec. The build environment has no crates.io
//! access, so there is no serde: this module implements the subset of
//! JSON the gateway and journal need — full parse/serialize round-trip
//! for null, bool, finite numbers, strings (with `\uXXXX` escapes and
//! surrogate pairs), arrays and objects.
//!
//! Canonical form: objects keep insertion order, numbers serialize via
//! Rust's shortest round-trip `f64` formatting, and non-finite numbers
//! are rejected at encode time (JSON has no NaN/Infinity). `dump ∘
//! parse` is the identity on every value this module can produce; the
//! property suite in `tests/wire_props.rs` pins that down.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse / decode error with byte position context.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input (0 for structural decode errors).
    pub pos: usize,
}

impl WireError {
    /// A structural (non-positional) decode error.
    pub fn new(msg: impl Into<String>) -> Self {
        WireError {
            msg: msg.into(),
            pos: 0,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for WireError {}

/// Maximum nesting depth accepted by the parser (stack safety).
const MAX_DEPTH: usize = 64;

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer accessor (rejects fractional numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required-field helpers for decoders: a missing or mistyped field
    /// is a structural [`WireError`].
    pub fn req_str(&self, key: &str) -> Result<String, WireError> {
        self.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| WireError::new(format!("missing string field '{key}'")))
    }

    /// Required number field.
    pub fn req_f64(&self, key: &str) -> Result<f64, WireError> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| WireError::new(format!("missing number field '{key}'")))
    }

    /// Required integer field.
    pub fn req_u64(&self, key: &str) -> Result<u64, WireError> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| WireError::new(format!("missing integer field '{key}'")))
    }

    /// Required array field.
    pub fn req_arr<'a>(&'a self, key: &str) -> Result<&'a [Json], WireError> {
        self.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| WireError::new(format!("missing array field '{key}'")))
    }

    /// Serialize to a compact JSON string. Panics on non-finite numbers
    /// (the codec never produces them; see [`Json::try_dump`]).
    pub fn dump(&self) -> String {
        self.try_dump()
            .expect("non-finite number cannot be serialized to JSON")
    }

    /// Serialize, reporting non-finite numbers as an error.
    pub fn try_dump(&self) -> Result<String, WireError> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    fn write(&self, out: &mut String) -> Result<(), WireError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if !n.is_finite() {
                    return Err(WireError::new("non-finite number"));
                }
                // Rust's shortest round-trip f64 formatting; valid JSON.
                out.push_str(&format!("{n}"));
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out)?;
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parse a JSON document (one value, surrounded by whitespace only).
    pub fn parse(input: &str) -> Result<Json, WireError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> WireError {
        WireError {
            msg: msg.into(),
            pos: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("lone low surrogate"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Num(0.0)),
            ("-12.5", Json::Num(-12.5)),
            ("1e-6", Json::Num(1e-6)),
            ("\"hi\"", Json::str("hi")),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value);
            assert_eq!(Json::parse(&value.dump()).unwrap(), value);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", Json::str("alice")),
            ("scores", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            (
                "nested",
                Json::obj([("ok", Json::Bool(true)), ("none", Json::Null)]),
            ),
        ]);
        let text = v.dump();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            text,
            r#"{"name":"alice","scores":[1,2.5],"nested":{"ok":true,"none":null}}"#
        );
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::str("line\nquote\"back\\slash\ttab\u{0001}u\u{1F600}");
        assert_eq!(Json::parse(&v.dump()).unwrap(), v);
        // Incoming \u escapes, including surrogate pairs, decode too.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00 \u0041""#).unwrap(),
            Json::str("\u{1F600} A")
        );
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "{:1}",
            "[1,]",
            "nan",
            "\"\\ud800x\"",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_rejected_at_encode() {
        assert!(Json::Num(f64::NAN).try_dump().is_err());
        assert!(Json::Num(f64::INFINITY).try_dump().is_err());
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.req_arr("a").unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }
}
