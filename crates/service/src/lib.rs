//! # dmp-service
//!
//! The platform boundary the paper's DMMS (Fig. 2) implies but a
//! library alone cannot provide: a **durable, sharded market gateway**.
//! Buyers and sellers talk to the arbiter over a network interface, and
//! the platform is accountable for every allocation and payment it
//! makes — so every externally-visible mutation is event-sourced:
//!
//! * [`command`] — each mutation (enroll, deposit, offer, ask, license
//!   grant, run_round) is one serializable [`command::Command`];
//! * [`wire`] — a hand-rolled JSON codec (no crates.io access, so no
//!   serde) with a proptest round-trip suite;
//! * [`journal`] — a length-prefixed, CRC-protected write-ahead log:
//!   commands are fsync'd *before* they are applied;
//! * [`snapshot`] — periodic compacted command checkpoints carrying a
//!   state digest that **verifies** recovery reproduced the exact
//!   pre-crash state (leaning on the bit-identical round pipeline);
//! * [`shard`] — participants hash across M [`dmp_core::DataMarket`]
//!   shards sharing one catalog + ledger substrate; every round is a
//!   two-phase exchange (shard-parallel candidate phase → one global
//!   clearing pass → ordered settlement), so an M-shard deployment
//!   clears exactly the trades the 1-shard market would;
//! * [`node`] — [`node::ServiceNode`]: journal → apply → snapshot, and
//!   `snapshot + journal replay` crash recovery;
//! * [`gateway`] — an **evented HTTP/1.1 server**: one reactor thread
//!   multiplexing every connection over an OS readiness queue (epoll
//!   via the `compat/polling` shim), request pipelining with ordered
//!   write-out, timer-wheel idle timeouts, and a sharded apply pool
//!   executing journaled commands off the reactor ([`reactor`],
//!   [`timer`]);
//! * [`client`] — a minimal blocking client for tests, benches and
//!   examples, with transparent keep-alive reconnection and a
//!   pipelined batch helper;
//! * [`codec`] — the versioned, bit-exact wire codec for the candidate
//!   sets and candidate-phase exports the distributed round protocol
//!   ships between processes;
//! * [`coordinator`] / [`worker`] — the **distributed exchange**: a
//!   coordinator process owns the journal, the global clearing pass and
//!   settlement ordering, and farms the candidate phase out to N
//!   shard-worker processes over the internal RPC surface
//!   (`/internal/*`), re-dispatching work from live replicas when a
//!   worker dies mid-round.
//!
//! ```no_run
//! use std::sync::Arc;
//! use dmp_core::market::MarketConfig;
//! use dmp_service::gateway::{Gateway, GatewayConfig};
//! use dmp_service::node::{ServiceConfig, ServiceNode};
//!
//! let cfg = ServiceConfig::new("./market-data", MarketConfig::external(7));
//! let node = Arc::new(ServiceNode::open(cfg).unwrap());
//! let gateway = Gateway::serve(node, GatewayConfig::default()).unwrap();
//! println!("serving on {}", gateway.addr());
//! ```

pub mod client;
pub mod codec;
pub mod command;
pub mod coordinator;
pub mod error;
pub mod gateway;
pub mod http;
pub mod journal;
pub mod metrics;
pub mod node;
pub(crate) mod reactor;
pub mod shard;
pub mod snapshot;
pub mod state;
pub mod timer;
pub mod wire;
pub mod worker;

pub use client::Client;
pub use command::{AskSpec, Command, LicenseSpec, OfferSpec};
pub use coordinator::WorkerPool;
pub use error::ServiceError;
pub use gateway::{Gateway, GatewayConfig};
pub use journal::Journal;
pub use node::{ServiceConfig, ServiceNode};
pub use shard::{MergedRoundReport, Outcome, RoundDistributor, ShardRouter};
pub use wire::{Json, WireError};
pub use worker::{WorkerConfig, WorkerNode};
