//! Versioned wire codec for the distributed round protocol: the
//! [`CandidateSet`]s and [`CandidatePhaseExport`]s that coordinator and
//! shard workers exchange between processes.
//!
//! Format rules (shared with the snapshot codec in [`crate::state`]):
//!
//! * every payload carries an explicit `"v"` version tag and decoding
//!   refuses unknown versions — a mixed-version deployment fails fast
//!   instead of settling a round from a misread candidate graph;
//! * integers ride as decimal strings and floats as `{:016x}` bit
//!   patterns, so a decoded bid is **bit-exact** — the clearing pass and
//!   the settlement planner on the far side see the same `f64`s the
//!   exporter computed, and the cross-process equivalence proptests can
//!   pin ledgers bit-for-bit;
//! * decoding is total: every defect (missing field, bad integer,
//!   unknown tag, version skew) is a [`WireError`], never a panic.

use dmp_core::arbiter::mashup_builder::BuiltMashup;
use dmp_core::arbiter::pipeline::{CandidatePhaseExport, CandidateSet};
use dmp_core::arbiter::pricing::RoundBid;

use crate::state::{
    arr, dec_audit_event, dec_dataset_vec, dec_f64, dec_negotiation, dec_relation, dec_str,
    dec_str_vec, dec_u64, dec_usize, enc_audit_event, enc_dataset_vec, enc_f64, enc_negotiation,
    enc_relation, enc_str_vec, enc_u64, enc_usize, field,
};
use crate::wire::{Json, WireError};

/// The current candidate-codec version. Bump on any format change and
/// keep decode refusing everything it does not understand.
pub const CANDIDATE_CODEC_VERSION: u64 = 1;

fn check_version(j: &Json) -> Result<(), WireError> {
    let v = dec_u64(field(j, "v")?)?;
    if v != CANDIDATE_CODEC_VERSION {
        return Err(WireError::new(format!(
            "candidate codec version {v} is not the supported {CANDIDATE_CODEC_VERSION}"
        )));
    }
    Ok(())
}

fn enc_bid(b: &RoundBid) -> Json {
    Json::obj([
        ("offer", enc_u64(b.offer_id)),
        ("buyer", Json::str(b.buyer.clone())),
        ("bid", enc_f64(b.bid)),
        ("satisfaction", enc_f64(b.satisfaction)),
        ("datasets", enc_dataset_vec(&b.datasets)),
        ("reserve_floor", enc_f64(b.reserve_floor)),
        ("license_multiplier", enc_f64(b.license_multiplier)),
    ])
}

fn dec_bid(j: &Json) -> Result<RoundBid, WireError> {
    Ok(RoundBid {
        offer_id: dec_u64(field(j, "offer")?)?,
        buyer: dec_str(field(j, "buyer")?)?,
        bid: dec_f64(field(j, "bid")?)?,
        satisfaction: dec_f64(field(j, "satisfaction")?)?,
        datasets: dec_dataset_vec(field(j, "datasets")?)?,
        reserve_floor: dec_f64(field(j, "reserve_floor")?)?,
        license_multiplier: dec_f64(field(j, "license_multiplier")?)?,
    })
}

fn enc_mashup(m: &BuiltMashup) -> Json {
    Json::obj([
        ("relation", enc_relation(&m.relation)),
        ("datasets", enc_dataset_vec(&m.datasets)),
        ("coverage", enc_f64(m.coverage)),
        ("confidence", enc_f64(m.confidence)),
        ("missing", enc_str_vec(&m.missing)),
    ])
}

fn dec_mashup(j: &Json) -> Result<BuiltMashup, WireError> {
    Ok(BuiltMashup {
        relation: dec_relation(field(j, "relation")?)?,
        datasets: dec_dataset_vec(field(j, "datasets")?)?,
        coverage: dec_f64(field(j, "coverage")?)?,
        confidence: dec_f64(field(j, "confidence")?)?,
        missing: dec_str_vec(field(j, "missing")?)?,
    })
}

/// Encode a [`CandidateSet`] (version-tagged).
pub fn encode_candidate_set(set: &CandidateSet) -> Json {
    Json::obj([
        ("v", enc_u64(CANDIDATE_CODEC_VERSION)),
        ("round", enc_u64(set.round)),
        ("bids", Json::Arr(set.bids.iter().map(enc_bid).collect())),
    ])
}

/// Decode a [`CandidateSet`], refusing unknown versions.
pub fn decode_candidate_set(j: &Json) -> Result<CandidateSet, WireError> {
    check_version(j)?;
    let mut bids = Vec::new();
    for b in arr(field(j, "bids")?)? {
        bids.push(dec_bid(b)?);
    }
    Ok(CandidateSet {
        round: dec_u64(field(j, "round")?)?,
        bids,
    })
}

/// Encode one shard's full candidate phase (version-tagged): the bids,
/// the winning mashups settlement needs, the unmet-demand report
/// inputs, and the audit events the candidate stage appended.
pub fn encode_export(export: &CandidatePhaseExport) -> Json {
    Json::obj([
        ("v", enc_u64(CANDIDATE_CODEC_VERSION)),
        ("round", enc_u64(export.round)),
        ("bids", Json::Arr(export.bids.iter().map(enc_bid).collect())),
        (
            "mashups",
            Json::Arr(
                export
                    .best_mashups
                    .iter()
                    .map(|(offer, m)| Json::Arr(vec![enc_u64(*offer), enc_mashup(m)]))
                    .collect(),
            ),
        ),
        (
            "missing",
            Json::Arr(export.missing.iter().map(|m| enc_str_vec(m)).collect()),
        ),
        (
            "negotiations",
            Json::Arr(export.negotiations.iter().map(enc_negotiation).collect()),
        ),
        (
            "audit",
            Json::Arr(export.audit_events.iter().map(enc_audit_event).collect()),
        ),
    ])
}

/// Decode one shard's candidate phase, refusing unknown versions.
pub fn decode_export(j: &Json) -> Result<CandidatePhaseExport, WireError> {
    check_version(j)?;
    let mut bids = Vec::new();
    for b in arr(field(j, "bids")?)? {
        bids.push(dec_bid(b)?);
    }
    let mut best_mashups = Vec::new();
    for pair in arr(field(j, "mashups")?)? {
        let pair = arr(pair)?;
        let mut it = pair.iter();
        let offer = it
            .next()
            .ok_or_else(|| WireError::new("mashup pair missing offer id"))?;
        let mashup = it
            .next()
            .ok_or_else(|| WireError::new("mashup pair missing mashup"))?;
        best_mashups.push((dec_u64(offer)?, dec_mashup(mashup)?));
    }
    let mut missing = Vec::new();
    for m in arr(field(j, "missing")?)? {
        missing.push(dec_str_vec(m)?);
    }
    let mut negotiations = Vec::new();
    for n in arr(field(j, "negotiations")?)? {
        negotiations.push(dec_negotiation(n)?);
    }
    let mut audit_events = Vec::new();
    for e in arr(field(j, "audit")?)? {
        audit_events.push(dec_audit_event(e)?);
    }
    Ok(CandidatePhaseExport {
        round: dec_u64(field(j, "round")?)?,
        bids,
        best_mashups,
        missing,
        negotiations,
        audit_events,
    })
}

/// Encode a whole round's exports (one per shard, shard order).
pub fn encode_exports(exports: &[CandidatePhaseExport]) -> Json {
    Json::Arr(exports.iter().map(encode_export).collect())
}

/// Decode a whole round's exports; `shards` pins the expected count so
/// a short or padded payload is refused before it reaches settlement.
pub fn decode_exports(j: &Json, shards: usize) -> Result<Vec<CandidatePhaseExport>, WireError> {
    let items = arr(j)?;
    if items.len() != shards {
        return Err(WireError::new(format!(
            "expected {shards} shard exports, got {}",
            items.len()
        )));
    }
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        out.push(decode_export(item)?);
    }
    Ok(out)
}

/// Encode indexed exports `(shard, export)` — the candidates RPC reply,
/// which carries only the shards the worker was assigned.
pub fn encode_indexed_exports(exports: &[(usize, CandidatePhaseExport)]) -> Json {
    Json::Arr(
        exports
            .iter()
            .map(|(shard, export)| Json::Arr(vec![enc_usize(*shard), encode_export(export)]))
            .collect(),
    )
}

/// Decode indexed exports, validating every shard index against the
/// deployment's shard count.
pub fn decode_indexed_exports(
    j: &Json,
    shards: usize,
) -> Result<Vec<(usize, CandidatePhaseExport)>, WireError> {
    let mut out = Vec::new();
    for pair in arr(j)? {
        let pair = arr(pair)?;
        let mut it = pair.iter();
        let shard = it
            .next()
            .ok_or_else(|| WireError::new("export pair missing shard index"))?;
        let export = it
            .next()
            .ok_or_else(|| WireError::new("export pair missing export"))?;
        let shard = dec_usize(shard)?;
        if shard >= shards {
            return Err(WireError::new(format!(
                "shard index {shard} out of range for {shards} shards"
            )));
        }
        out.push((shard, decode_export(export)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_core::arbiter::pipeline::NegotiationRequest;
    use dmp_core::trust::AuditEvent;
    use dmp_relation::{DataType, DatasetId, Relation, Schema, Value};

    fn bid(offer_id: u64) -> RoundBid {
        RoundBid {
            offer_id,
            buyer: format!("buyer \"q\" π {offer_id}"),
            bid: 123.456789,
            satisfaction: 0.875,
            datasets: vec![DatasetId(3), DatasetId(11)],
            reserve_floor: 7.25,
            license_multiplier: 1.5,
        }
    }

    fn mashup() -> BuiltMashup {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)])
            .unwrap()
            .shared();
        let mut rel = Relation::empty("m", schema);
        rel.push_values(vec![Value::Int(1), Value::str("x")])
            .unwrap();
        BuiltMashup {
            relation: rel.with_source(DatasetId(3)),
            datasets: vec![DatasetId(3)],
            coverage: 0.5,
            confidence: 0.25,
            missing: vec!["e".into()],
        }
    }

    #[test]
    fn candidate_set_round_trips_through_the_wire() {
        let set = CandidateSet {
            round: 9,
            bids: vec![bid(42)],
        };
        let encoded = encode_candidate_set(&set).dump();
        let decoded = decode_candidate_set(&Json::parse(&encoded).unwrap()).expect("decodes back");
        assert_eq!(decoded, set, "wire round-trip changed the candidate set");
        // Malformed sets are refused, not defaulted.
        assert!(decode_candidate_set(&Json::parse(r#"{"v":"1","round":"1"}"#).unwrap()).is_err());
        assert!(decode_candidate_set(
            &Json::parse(r#"{"v":"1","round":"1","bids":[{"offer":"1"}]}"#).unwrap()
        )
        .is_err());
    }

    #[test]
    fn version_skew_is_refused() {
        let set = CandidateSet {
            round: 1,
            bids: Vec::new(),
        };
        let mut encoded = encode_candidate_set(&set).dump();
        encoded = encoded.replacen("\"1\"", "\"2\"", 1);
        let err = decode_candidate_set(&Json::parse(&encoded).unwrap()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // Missing version tag is also refused.
        assert!(decode_candidate_set(&Json::parse(r#"{"round":"1","bids":[]}"#).unwrap()).is_err());
    }

    #[test]
    fn export_round_trips_through_the_wire() {
        let export = CandidatePhaseExport {
            round: 4,
            bids: vec![bid(7), bid(9)],
            best_mashups: vec![(7, mashup())],
            missing: vec![vec!["e".into(), "f".into()], Vec::new()],
            negotiations: vec![NegotiationRequest {
                offer_id: 9,
                buyer: "bob".into(),
                missing: vec!["e".into()],
                candidate_sellers: vec!["s1".into()],
            }],
            audit_events: vec![AuditEvent::MashupBuilt {
                offer: 7,
                datasets: vec![DatasetId(3)],
            }],
        };
        let encoded = encode_export(&export).dump();
        let decoded = decode_export(&Json::parse(&encoded).unwrap()).expect("decodes back");
        assert_eq!(decoded, export, "wire round-trip changed the export");
    }

    #[test]
    fn float_bit_patterns_survive_the_wire() {
        // Values with no short decimal form must still round-trip
        // bit-exactly — the codec ships bit patterns, not decimals.
        let mut b = bid(1);
        b.bid = 0.1 + 0.2;
        b.satisfaction = f64::MIN_POSITIVE;
        let set = CandidateSet {
            round: 1,
            bids: vec![b.clone()],
        };
        let decoded =
            decode_candidate_set(&Json::parse(&encode_candidate_set(&set).dump()).unwrap())
                .unwrap();
        let back = decoded.bids.first().unwrap();
        assert_eq!(back.bid.to_bits(), b.bid.to_bits());
        assert_eq!(back.satisfaction.to_bits(), b.satisfaction.to_bits());
    }

    #[test]
    fn indexed_exports_validate_shard_range() {
        let exports = vec![(
            1usize,
            CandidatePhaseExport {
                round: 1,
                bids: Vec::new(),
                best_mashups: Vec::new(),
                missing: Vec::new(),
                negotiations: Vec::new(),
                audit_events: Vec::new(),
            },
        )];
        let j = encode_indexed_exports(&exports);
        let decoded = decode_indexed_exports(&j, 2).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded.first().unwrap().0, 1);
        assert!(decode_indexed_exports(&j, 1).is_err(), "index out of range");
    }

    #[test]
    fn exports_pin_shard_count() {
        let j = encode_exports(&[]);
        assert!(decode_exports(&j, 0).unwrap().is_empty());
        assert!(decode_exports(&j, 2).is_err(), "short payload refused");
    }

    use proptest::prelude::*;

    /// Arbitrary bids: buyer names over the full escapable-character
    /// space and floats drawn as raw bit patterns, so the strategy
    /// reaches NaNs, infinities, subnormals and negative zero.
    const BITS: std::ops::RangeInclusive<u64> = 0u64..=u64::MAX;

    fn arb_bid() -> impl Strategy<Value = RoundBid> {
        (
            BITS,
            ".{0,12}",
            BITS,
            BITS,
            proptest::collection::vec(BITS, 0..4),
            BITS,
            BITS,
        )
            .prop_map(|(offer_id, buyer, bid, sat, ds, floor, mult)| RoundBid {
                offer_id,
                buyer,
                bid: f64::from_bits(bid),
                satisfaction: f64::from_bits(sat),
                datasets: ds.into_iter().map(DatasetId).collect(),
                reserve_floor: f64::from_bits(floor),
                license_multiplier: f64::from_bits(mult),
            })
    }

    /// Bit-level view of a bid (NaN != NaN under `PartialEq`, but the
    /// wire must preserve even NaN payload bits).
    fn bid_bits(b: &RoundBid) -> (u64, &str, u64, u64, Vec<u64>, u64, u64) {
        (
            b.offer_id,
            &b.buyer,
            b.bid.to_bits(),
            b.satisfaction.to_bits(),
            b.datasets.iter().map(|d| d.0).collect(),
            b.reserve_floor.to_bits(),
            b.license_multiplier.to_bits(),
        )
    }

    proptest! {
        /// The satellite property: `decode(encode(cs)) == cs` for
        /// arbitrary candidate sets, bit-for-bit, through an actual
        /// serialize → parse cycle of the JSON text.
        #[test]
        fn candidate_set_codec_round_trips(
            round in BITS,
            bids in proptest::collection::vec(arb_bid(), 0..8),
        ) {
            let set = CandidateSet { round, bids };
            let text = encode_candidate_set(&set).dump();
            let decoded = decode_candidate_set(&Json::parse(&text).expect("self-produced json"))
                .expect("self-produced payload decodes");
            prop_assert_eq!(decoded.round, set.round);
            prop_assert_eq!(decoded.bids.len(), set.bids.len());
            for (a, b) in decoded.bids.iter().zip(&set.bids) {
                prop_assert_eq!(bid_bits(a), bid_bits(b));
            }
        }
    }
}
