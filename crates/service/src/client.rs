//! A tiny blocking HTTP client for the gateway, shared by the e2e
//! tests, the `serve` example and the throughput benches. One
//! [`Client`] holds one keep-alive connection.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{read_response, HttpError};
use crate::wire::Json;

/// One keep-alive connection to a gateway.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
}

impl Client {
    /// Connect.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            addr,
        })
    }

    /// The gateway address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Issue one request; returns `(status, parsed body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> std::io::Result<(u16, Json)> {
        use std::io::Write;
        let body_text = body.map(Json::dump).unwrap_or_default();
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\ncontent-type: application/json\r\n\r\n{}",
            self.addr,
            body_text.len(),
            body_text
        )?;
        self.writer.flush()?;
        let (status, bytes) = read_response(&mut self.reader).map_err(|e| match e {
            HttpError::Io(io) => io,
            other => std::io::Error::other(format!("{other:?}")),
        })?;
        let text = String::from_utf8_lossy(&bytes);
        let json = Json::parse(&text)
            .map_err(|e| std::io::Error::other(format!("bad response JSON: {e}")))?;
        Ok((status, json))
    }

    /// `GET path`, expecting 200.
    pub fn get(&mut self, path: &str) -> std::io::Result<Json> {
        let (status, json) = self.request("GET", path, None)?;
        if status != 200 {
            return Err(std::io::Error::other(format!(
                "GET {path} -> {status}: {}",
                json.dump()
            )));
        }
        Ok(json)
    }

    /// `POST path`, expecting 200.
    pub fn post(&mut self, path: &str, body: &Json) -> std::io::Result<Json> {
        let (status, json) = self.request("POST", path, Some(body))?;
        if status != 200 {
            return Err(std::io::Error::other(format!(
                "POST {path} -> {status}: {}",
                json.dump()
            )));
        }
        Ok(json)
    }
}
