//! A small blocking HTTP client for the gateway, shared by the e2e
//! tests, the `serve` example and the throughput benches.
//!
//! One [`Client`] manages one keep-alive connection and hides its
//! lifecycle: a `Connection: close` response (or a keep-alive socket
//! the server already shut — an idle-timeout race every pooled HTTP
//! client has to handle) triggers a transparent re-dial instead of an
//! error on the next request. The stale-connection retry only fires
//! for requests written to a *reused* socket that died before
//! producing any response bytes — a fresh connection failing is a real
//! error, and a half-read response is never retried (the server may
//! have applied the command).
//!
//! [`Client::pipeline`] writes a whole batch of requests before
//! reading any responses — HTTP/1.1 pipelining, which the evented
//! gateway answers in request order. One round trip per *batch*
//! instead of one per request is the difference between
//! latency-bound and throughput-bound benching.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{read_response_full, HttpError};
use crate::wire::Json;

/// One request in a [`Client::pipeline`] batch.
#[derive(Debug, Clone)]
pub struct PipelinedRequest {
    /// HTTP method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path.
    pub path: String,
    /// Optional JSON body.
    pub body: Option<Json>,
}

impl PipelinedRequest {
    /// A bodyless `GET`.
    pub fn get(path: impl Into<String>) -> Self {
        PipelinedRequest {
            method: "GET".into(),
            path: path.into(),
            body: None,
        }
    }

    /// A `POST` with a JSON body.
    pub fn post(path: impl Into<String>, body: Json) -> Self {
        PipelinedRequest {
            method: "POST".into(),
            path: path.into(),
            body: Some(body),
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Whether this socket already served at least one request; only
    /// then may a dead socket be a stale-keep-alive race worth a retry.
    reused: bool,
}

/// A keep-alive connection to a gateway (re-dialed transparently).
pub struct Client {
    conn: Option<Conn>,
    addr: SocketAddr,
}

impl Client {
    /// Connect.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let mut client = Client { conn: None, addr };
        client.ensure_conn()?;
        Ok(client)
    }

    /// The gateway address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn ensure_conn(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_nodelay(true)?;
            let writer = stream.try_clone()?;
            self.conn = Some(Conn {
                reader: BufReader::new(stream),
                writer,
                reused: false,
            });
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    fn encode(method: &str, path: &str, body: Option<&Json>, addr: SocketAddr) -> Vec<u8> {
        let body_text = body.map(Json::dump).unwrap_or_default();
        let mut out = Vec::with_capacity(body_text.len() + 128);
        let _ = write!(
            out,
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\ncontent-type: application/json\r\n\r\n{}",
            body_text.len(),
            body_text
        );
        out
    }

    /// Whether an error smells like the server closed a keep-alive
    /// socket under us (as opposed to refusing or misbehaving).
    fn is_stale_conn_error(e: &std::io::Error) -> bool {
        matches!(
            e.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
        )
    }

    /// Issue one request; returns `(status, parsed body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> std::io::Result<(u16, Json)> {
        let bytes = Self::encode(method, path, body, self.addr);
        loop {
            let conn = self.ensure_conn()?;
            let was_reused = conn.reused;
            let attempt = conn
                .writer
                .write_all(&bytes)
                .and_then(|()| conn.writer.flush())
                .and_then(|()| {
                    read_response_full(&mut conn.reader).map_err(|e| match e {
                        HttpError::Io(io) => io,
                        HttpError::Eof => std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "connection closed before response",
                        ),
                        other => std::io::Error::other(format!("{other:?}")),
                    })
                });
            match attempt {
                Ok((status, resp_bytes, close)) => {
                    conn.reused = true;
                    if close {
                        // Server said this socket is done: drop it now
                        // so the next request re-dials instead of
                        // writing into a closing stream.
                        self.conn = None;
                    }
                    let text = String::from_utf8_lossy(&resp_bytes);
                    let json = Json::parse(&text)
                        .map_err(|e| std::io::Error::other(format!("bad response JSON: {e}")))?;
                    return Ok((status, json));
                }
                Err(e) if was_reused && Self::is_stale_conn_error(&e) => {
                    // Stale keep-alive socket (idle-timeout race): no
                    // response byte arrived, so the server did not
                    // process the request on this socket. Re-dial and
                    // resend once; a fresh socket failing is final.
                    self.conn = None;
                    continue;
                }
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
    }

    /// Write every request in `batch` before reading any response —
    /// HTTP/1.1 pipelining. Responses return in request order. If the
    /// server closes the connection partway (e.g. a 400 with
    /// `Connection: close`), the remaining requests are resent on a
    /// fresh connection.
    pub fn pipeline(&mut self, batch: &[PipelinedRequest]) -> std::io::Result<Vec<(u16, Json)>> {
        let mut results = Vec::with_capacity(batch.len());
        let mut start = 0usize;
        while start < batch.len() {
            let rest = &batch[start..];
            let mut wire = Vec::new();
            for r in rest {
                wire.extend_from_slice(&Self::encode(
                    &r.method,
                    &r.path,
                    r.body.as_ref(),
                    self.addr,
                ));
            }
            let conn = self.ensure_conn()?;
            let was_reused = conn.reused;
            conn.writer.write_all(&wire)?;
            conn.writer.flush()?;
            let mut got_any = false;
            let mut reconnect = false;
            for _ in rest {
                match read_response_full(&mut conn.reader) {
                    Ok((status, bytes, close)) => {
                        got_any = true;
                        conn.reused = true;
                        let text = String::from_utf8_lossy(&bytes);
                        let json = Json::parse(&text).map_err(|e| {
                            std::io::Error::other(format!("bad response JSON: {e}"))
                        })?;
                        results.push((status, json));
                        start += 1;
                        if close {
                            // Later pipelined requests die with the
                            // socket; resend them on a fresh one.
                            reconnect = true;
                            break;
                        }
                    }
                    Err(HttpError::Eof) | Err(HttpError::Io(_)) if was_reused && !got_any => {
                        // Stale keep-alive socket: nothing was
                        // processed, resend the whole remainder.
                        reconnect = true;
                        break;
                    }
                    Err(e) => {
                        self.conn = None;
                        return Err(match e {
                            HttpError::Io(io) => io,
                            other => std::io::Error::other(format!("{other:?}")),
                        });
                    }
                }
            }
            if reconnect {
                self.conn = None;
            }
        }
        Ok(results)
    }

    /// `GET path` returning the raw body text (for non-JSON endpoints
    /// like the Prometheus exposition on `/metrics`), expecting 200.
    pub fn get_text(&mut self, path: &str) -> std::io::Result<String> {
        let bytes = Self::encode("GET", path, None, self.addr);
        loop {
            let conn = self.ensure_conn()?;
            let was_reused = conn.reused;
            let attempt = conn
                .writer
                .write_all(&bytes)
                .and_then(|()| conn.writer.flush())
                .and_then(|()| {
                    read_response_full(&mut conn.reader).map_err(|e| match e {
                        HttpError::Io(io) => io,
                        HttpError::Eof => std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "connection closed before response",
                        ),
                        other => std::io::Error::other(format!("{other:?}")),
                    })
                });
            match attempt {
                Ok((status, resp_bytes, close)) => {
                    conn.reused = true;
                    if close {
                        self.conn = None;
                    }
                    if status != 200 {
                        return Err(std::io::Error::other(format!("GET {path} -> {status}")));
                    }
                    return String::from_utf8(resp_bytes)
                        .map_err(|_| std::io::Error::other("response body is not UTF-8"));
                }
                Err(e) if was_reused && Self::is_stale_conn_error(&e) => {
                    self.conn = None;
                    continue;
                }
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
    }

    /// `GET path`, expecting 200.
    pub fn get(&mut self, path: &str) -> std::io::Result<Json> {
        let (status, json) = self.request("GET", path, None)?;
        if status != 200 {
            return Err(std::io::Error::other(format!(
                "GET {path} -> {status}: {}",
                json.dump()
            )));
        }
        Ok(json)
    }

    /// `POST path`, expecting 200.
    pub fn post(&mut self, path: &str, body: &Json) -> std::io::Result<Json> {
        let (status, json) = self.request("POST", path, Some(body))?;
        if status != 200 {
            return Err(std::io::Error::other(format!(
                "POST {path} -> {status}: {}",
                json.dump()
            )));
        }
        Ok(json)
    }
}
