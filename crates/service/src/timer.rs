//! A hashed timer wheel for connection idle deadlines.
//!
//! The reactor needs thousands of coarse timeouts ("close this
//! connection if nothing arrives for 10s") with O(1) insert and O(1)
//! amortized expiry — a `BinaryHeap` would pay O(log n) per socket
//! touch, and sockets are touched on every request. The wheel hashes
//! each deadline into one of `slots` buckets of `tick` width and scans
//! one bucket per elapsed tick.
//!
//! Cancellation and postponement are **lazy**: the reactor never
//! removes an entry when a connection sees traffic — it just bumps the
//! connection's authoritative deadline. When the wheel hands back an
//! id, the caller re-checks that deadline and re-schedules instead of
//! expiring if it moved. Entries landing past the wheel horizon park in
//! the furthest slot and take another lap (the re-check makes this
//! safe). Ids for dead connections simply fall out: the caller looks
//! them up, finds nothing, and drops them.

use std::time::{Duration, Instant};

/// A coarse-grained timer wheel over opaque `u64` ids.
pub struct TimerWheel {
    slots: Vec<Vec<(u64, Instant)>>,
    tick: Duration,
    /// Slot index whose window starts at `base`.
    cursor: usize,
    /// Start of the cursor slot's time window.
    base: Instant,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `tick` wide. The horizon —
    /// the furthest deadline placed without parking — is
    /// `tick * slots`.
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        assert!(!tick.is_zero(), "tick must be positive");
        let slots = slots.max(2);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            cursor: 0,
            base: Instant::now(),
        }
    }

    /// Schedule `id` to surface from [`TimerWheel::advance`] once
    /// `deadline` passes. An id may be scheduled while already in the
    /// wheel (after a lazy postponement); the extra entry is
    /// deduplicated by the caller's deadline re-check.
    pub fn schedule(&mut self, id: u64, deadline: Instant) {
        let offset = deadline.saturating_duration_since(self.base);
        // Integer tick distance, clamped to the horizon; entries past
        // the horizon park in the furthest slot and re-loop.
        let ticks = (offset.as_nanos() / self.tick.as_nanos()) as usize;
        let ticks = ticks.min(self.slots.len() - 1);
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push((id, deadline));
    }

    /// Advance the wheel to `now`, collecting every id whose bucket has
    /// come due. Entries whose stored deadline is still in the future
    /// (horizon-parked) are re-scheduled internally, but the caller
    /// must still re-check its own authoritative deadline for the
    /// returned ids — lazily postponed entries surface here too.
    pub fn advance(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        while self.base + self.tick <= now {
            let drained: Vec<(u64, Instant)> = std::mem::take(&mut self.slots[self.cursor]);
            self.base += self.tick;
            self.cursor = (self.cursor + 1) % self.slots.len();
            for (id, deadline) in drained {
                if deadline <= now {
                    due.push(id);
                } else {
                    self.schedule(id, deadline);
                }
            }
        }
        due
    }

    /// How long [`Poller::wait`](polling::Poller::wait) may sleep
    /// before the next non-empty bucket comes due. `None` when the
    /// wheel is empty (sleep until woken).
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let len = self.slots.len();
        (0..len)
            .find(|k| !self.slots[(self.cursor + k) % len].is_empty())
            .map(|k| {
                // The k-th bucket from the cursor drains once `base +
                // (k+1) ticks` has passed.
                let due_at = self.base + self.tick * (k as u32 + 1);
                due_at.saturating_duration_since(now)
            })
    }

    /// Total scheduled entries (including lazily superseded ones).
    pub fn len(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(10);

    #[test]
    fn expires_only_after_the_deadline() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(TICK, 8);
        wheel.schedule(1, start + Duration::from_millis(35));
        assert!(wheel.advance(start + Duration::from_millis(30)).is_empty());
        assert_eq!(wheel.advance(start + Duration::from_millis(50)), vec![1]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn horizon_overflow_takes_extra_laps() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(TICK, 4); // horizon = 40ms
        wheel.schedule(7, start + Duration::from_millis(95));
        assert!(wheel.advance(start + Duration::from_millis(40)).is_empty());
        assert!(wheel.advance(start + Duration::from_millis(80)).is_empty());
        assert_eq!(wheel.advance(start + Duration::from_millis(100)), vec![7]);
    }

    #[test]
    fn many_ids_expire_in_deadline_buckets() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(TICK, 16);
        for id in 0..100u64 {
            wheel.schedule(id, start + TICK * (1 + (id % 4) as u32));
        }
        let mut seen = Vec::new();
        for step in 1..=5u32 {
            let mut batch = wheel.advance(start + TICK * step + Duration::from_millis(1));
            // Everything due by this step has surfaced.
            batch.sort_unstable();
            seen.extend(batch);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_timeout_points_at_first_nonempty_bucket() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(TICK, 8);
        assert_eq!(wheel.next_timeout(start), None);
        wheel.schedule(1, start + Duration::from_millis(25));
        let timeout = wheel.next_timeout(start).unwrap();
        assert!(
            timeout >= Duration::from_millis(20) && timeout <= Duration::from_millis(40),
            "{timeout:?} should cover the scheduled bucket"
        );
    }

    #[test]
    fn postponed_entries_can_be_rescheduled_by_the_caller() {
        // Simulates the reactor's lazy postponement: the wheel fires,
        // the caller sees a later authoritative deadline and re-arms.
        // (Wheel first: its internal base must not postdate `start`.)
        let mut wheel = TimerWheel::new(TICK, 8);
        let start = Instant::now();
        wheel.schedule(3, start + Duration::from_millis(15));
        let fired = wheel.advance(start + Duration::from_millis(20));
        assert_eq!(fired, vec![3]);
        let new_deadline = start + Duration::from_millis(60);
        wheel.schedule(3, new_deadline);
        assert!(wheel.advance(start + Duration::from_millis(40)).is_empty());
        assert_eq!(wheel.advance(start + Duration::from_millis(70)), vec![3]);
    }
}
