//! The event journal: a length-prefixed, CRC-protected write-ahead log
//! of [`Command`]s.
//!
//! Record framing (all little-endian):
//!
//! ```text
//! ┌──────────┬──────────┬─────────────────────────────┐
//! │ len: u32 │ crc: u32 │ payload: len bytes of JSON  │
//! └──────────┴──────────┴─────────────────────────────┘
//! payload = {"seq": <u64>, "cmd": <Command wire form>}
//! ```
//!
//! Appends are flushed (and, with [`Journal::fsync`] on, `fdatasync`'d)
//! *before* the command is applied to the market — classic WAL
//! ordering, so an applied mutation is always recoverable. A crash can
//! leave at most one torn record at the tail; [`Journal::open`] detects
//! it (short frame or CRC mismatch), truncates the file back to the
//! last intact record, and returns every valid `(seq, Command)` for
//! replay.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::command::Command;
use crate::metrics::metrics;
use crate::wire::Json;

/// CRC-32 (IEEE 802.3, reflected) over a byte slice; table-free
/// bitwise implementation — journal records are small.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Frame one journal/snapshot record.
pub(crate) fn frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Scan framed records out of a byte buffer, stopping cleanly at the
/// first torn or corrupt frame. Returns `(payloads, valid_len)`.
pub(crate) fn scan_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    // Checked reads throughout: this scan runs over arbitrary on-disk
    // bytes, so a short or corrupt buffer must stop the scan (torn
    // tail: header truncated), never panic it.
    while let (Some(len), Some(crc)) = (read_u32_le(bytes, pos), read_u32_le(bytes, pos + 4)) {
        let start = pos + 8;
        let payload = match start
            .checked_add(len as usize)
            .and_then(|end| bytes.get(start..end))
        {
            Some(p) => p,
            None => break, // torn tail: payload truncated mid-write
        };
        if crc32(payload) != crc {
            break; // torn tail: header written, payload garbage
        }
        payloads.push(payload.to_vec());
        pos = start + payload.len();
    }
    (payloads, pos)
}

/// Little-endian u32 at `at`, `None` if the buffer is too short.
fn read_u32_le(bytes: &[u8], at: usize) -> Option<u32> {
    let s = bytes.get(at..at.checked_add(4)?)?;
    s.try_into().ok().map(u32::from_le_bytes)
}

/// The maximum journal record payload accepted on replay (a corrupt
/// length prefix must not allocate unbounded memory).
const MAX_RECORD: usize = 64 * 1024 * 1024;

/// Decode one journal payload into `(seq, Command)`.
fn decode_record(payload: &[u8]) -> Option<(u64, Command)> {
    if payload.len() > MAX_RECORD {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let json = Json::parse(text).ok()?;
    let seq = json.req_u64("seq").ok()?;
    let cmd = Command::decode(json.get("cmd")?).ok()?;
    Some((seq, cmd))
}

/// An append-only command journal backed by one file.
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Bytes of fully-written, replayable records (the append cursor;
    /// a failed append rolls the file back to this boundary).
    valid_len: u64,
    /// Set when a failed append could not be rolled back: the file may
    /// end in a torn frame the writer cannot account for. A poisoned
    /// journal refuses all further appends — writing *past* a torn
    /// frame would strand durable records behind garbage, because
    /// recovery stops scanning at the first bad frame.
    poisoned: bool,
    /// `fdatasync` every append (off trades durability for throughput;
    /// the OS still sees the write immediately, so only a *machine*
    /// crash can lose the tail).
    pub fsync: bool,
}

impl Journal {
    /// Open (or create) the journal at `path`, replaying every intact
    /// record and truncating a torn or undecodable tail left by a
    /// crash. Returns the journal positioned for appends plus the
    /// recovered records in append order.
    pub fn open(
        path: impl AsRef<Path>,
        fsync: bool,
    ) -> std::io::Result<(Journal, Vec<(u64, Command)>)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (payloads, mut valid_len) = scan_frames(&bytes);

        let mut records = Vec::with_capacity(payloads.len());
        let mut decoded_len = 0usize;
        for payload in payloads {
            if decode_record(&payload).map(|r| records.push(r)).is_none() {
                // A CRC-intact frame that does not decode is corruption
                // too: keep the consistent prefix, drop it and the rest
                // (appends verify replayability, so this means tamper
                // or a codec regression, not normal operation).
                valid_len = decoded_len;
                break;
            }
            decoded_len += 8 + payload.len();
        }
        if valid_len < bytes.len() {
            // Torn/undecodable tail: drop it so the next append starts
            // on a clean, replayable frame boundary.
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;

        Ok((
            Journal {
                file,
                path,
                valid_len: valid_len as u64,
                poisoned: false,
                fsync,
            },
            records,
        ))
    }

    /// Append one command under a sequence number. The record is on
    /// disk (modulo `fsync`) when this returns. WAL invariant: only
    /// records that replay are ever written — the framed payload is
    /// round-tripped through the decoder first, and a failed write
    /// rolls the file back to the last good frame boundary so a later
    /// successful append can never strand durable records behind a
    /// torn frame.
    pub fn append(&mut self, seq: u64, cmd: &Command) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "journal is poisoned: a failed append could not be rolled back, so the \
                 file may end in a torn frame; reopen the journal to truncate and resume",
            ));
        }
        // dmp-lint: allow(det-float) -- JSON wire carries seq as f64; the round-trip decode below refuses any seq that does not survive exactly
        let payload = Json::obj([("seq", Json::Num(seq as f64)), ("cmd", cmd.encode())])
            .try_dump()
            .map_err(|e| {
                // Non-finite amounts (NaN/inf from library callers) are
                // unrepresentable on the wire: an error, not a panic.
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
            })?;
        match decode_record(payload.as_bytes()) {
            Some((s, c)) if s == seq && c == *cmd => {}
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "command does not survive the wire round-trip (e.g. integer cell \
                     beyond 2^53); refusing to journal an unreplayable record",
                ));
            }
        }
        let m = metrics();
        let started = Instant::now(); // dmp-lint: allow(det-wall-clock) -- append latency telemetry; never journaled or applied
        let mut buf = Vec::with_capacity(payload.len() + 8);
        frame(payload.as_bytes(), &mut buf);
        let result = self
            .file
            .write_all(&buf)
            .and_then(|()| self.file.flush())
            .and_then(|()| {
                if self.fsync {
                    // dmp-lint: allow(det-wall-clock) -- fsync latency telemetry; never journaled or applied
                    let sync_started = Instant::now();
                    let r = self.file.sync_data();
                    m.journal_fsync_us
                        .record_duration_us(sync_started.elapsed());
                    r
                } else {
                    Ok(())
                }
            });
        match result {
            Ok(()) => {
                self.valid_len += buf.len() as u64;
                m.journal_appends.inc();
                m.journal_bytes.add(buf.len() as u64);
                m.journal_append_us.record_duration_us(started.elapsed());
                Ok(())
            }
            Err(e) => {
                // Roll back the partial frame (ENOSPC and friends). If
                // the rollback itself fails, the file may hold a torn
                // frame this writer can no longer see past — recovery
                // would stop at it, so appending *more* records behind
                // it would silently lose them. Poison the journal:
                // every later append fails loudly until a reopen
                // re-scans and truncates the tail.
                let rolled_back = self
                    .file
                    .set_len(self.valid_len)
                    .and_then(|()| self.file.seek(SeekFrom::End(0)).map(|_| ()));
                if rolled_back.is_err() {
                    self.poisoned = true;
                    m.journal_poisoned.inc();
                }
                Err(e)
            }
        }
    }

    /// Drop every record with `seq <= upto_seq` — the prefix a verified
    /// durable snapshot has made redundant. The kept tail is rewritten
    /// into a sibling `.compact` file (original frame bytes, so CRCs
    /// are preserved verbatim), fsync'd, renamed over the journal, and
    /// the directory entry is fsync'd; the live file handle is then
    /// reopened on the new inode. Crash-safe at every step: before the
    /// rename the old journal is intact, after it the compacted journal
    /// is complete. Returns the number of bytes dropped.
    pub fn truncate_prefix(&mut self, upto_seq: u64) -> std::io::Result<u64> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "journal is poisoned: refusing to compact a file that may end in a \
                 torn frame; reopen the journal first",
            ));
        }
        self.file.flush()?;
        let bytes = std::fs::read(&self.path)?;
        let (payloads, scanned_len) = scan_frames(&bytes);
        if scanned_len as u64 != self.valid_len {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "journal changed underneath the writer during compaction",
            ));
        }
        let mut kept = Vec::new();
        let mut dropped = 0u64;
        for payload in &payloads {
            let seq = decode_record(payload).map(|(seq, _)| seq).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "undecodable record inside the journal's valid prefix",
                )
            })?;
            if seq > upto_seq {
                frame(payload, &mut kept);
            } else {
                dropped += 8 + payload.len() as u64;
            }
        }
        if dropped == 0 {
            return Ok(0);
        }

        let compact_path = self.path.with_extension("compact");
        {
            let mut f = File::create(&compact_path)?;
            f.write_all(&kept)?;
            f.sync_all()?;
        }
        std::fs::rename(&compact_path, &self.path)?;
        // Persist the rename (same directory-fsync contract as
        // snapshot writes; an unopenable directory is tolerated).
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                d.sync_all()?;
            }
        }
        // The old handle still points at the pre-rename inode; appends
        // through it would write to an unlinked file. Reopen.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.valid_len = kept.len() as u64;
        Ok(dropped)
    }

    /// Whether a failed rollback has poisoned this journal (appends are
    /// refused until the file is reopened and its tail re-truncated).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Test hook: force the poisoned state a failed rollback would set
    /// (an `ftruncate` failure is not portably inducible from a test).
    #[doc(hidden)]
    pub fn poison_for_test(&mut self) {
        self.poisoned = true;
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current journal size in bytes.
    pub fn len(&self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// True iff the journal holds no records.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmp-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.wal")
    }

    fn sample_cmds() -> Vec<Command> {
        vec![
            Command::Enroll {
                name: "a".into(),
                role: "buyer".into(),
            },
            Command::Deposit {
                account: "a".into(),
                amount: 10.5,
            },
            Command::RunRound { rounds: 1 },
        ]
    }

    #[test]
    fn append_then_reopen_replays() {
        let path = tmp("replay");
        let cmds = sample_cmds();
        {
            let (mut j, existing) = Journal::open(&path, true).unwrap();
            assert!(existing.is_empty());
            for (i, c) in cmds.iter().enumerate() {
                j.append(i as u64 + 1, c).unwrap();
            }
        }
        let (_, records) = Journal::open(&path, true).unwrap();
        assert_eq!(records.len(), cmds.len());
        for (i, (seq, cmd)) in records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(cmd, &cmds[i]);
        }
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        {
            let (mut j, _) = Journal::open(&path, true).unwrap();
            for (i, c) in sample_cmds().iter().enumerate() {
                j.append(i as u64 + 1, c).unwrap();
            }
        }
        // Simulate a crash mid-append: chop arbitrary bytes off the end.
        let full = std::fs::read(&path).unwrap();
        for cut in [1, 3, 7, 11] {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let (j, records) = Journal::open(&path, true).unwrap();
            assert_eq!(records.len(), 2, "cut {cut}: only the tail record lost");
            // The file is truncated back to a clean frame boundary and
            // accepts new appends.
            drop(j);
            let (mut j, _) = Journal::open(&path, true).unwrap();
            j.append(3, &Command::RunRound { rounds: 2 }).unwrap();
            let (_, records) = Journal::open(&path, true).unwrap();
            assert_eq!(records.len(), 3);
        }
    }

    #[test]
    fn corrupt_payload_stops_replay() {
        let path = tmp("corrupt");
        {
            let (mut j, _) = Journal::open(&path, true).unwrap();
            for (i, c) in sample_cmds().iter().enumerate() {
                j.append(i as u64 + 1, c).unwrap();
            }
        }
        // Flip a byte inside the *second* record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload_start = first_len + 8 + 8;
        bytes[second_payload_start + 2] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = Journal::open(&path, true).unwrap();
        assert_eq!(records.len(), 1, "replay stops at the corrupt record");
    }

    #[test]
    fn unreplayable_command_refused_at_append() {
        use crate::command::{AskSpec, CellSpec, ColType, TableSpec};
        let path = tmp("unreplayable");
        let (mut j, _) = Journal::open(&path, true).unwrap();
        // An integer cell beyond 2^53 cannot survive the f64 wire
        // encoding; the WAL must refuse it rather than journal a
        // record that will not replay.
        let cmd = Command::SubmitAsk(AskSpec {
            seller: "s".into(),
            table: TableSpec {
                name: "t".into(),
                columns: vec![("k".into(), ColType::Int)],
                rows: vec![vec![CellSpec::Int(i64::MAX)]],
            },
            reserve: None,
            license: None,
        });
        let err = j.append(1, &cmd).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The journal is untouched and still accepts good records.
        j.append(1, &Command::RunRound { rounds: 1 }).unwrap();
        let (_, records) = Journal::open(&path, true).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn undecodable_record_truncated_on_open() {
        let path = tmp("undecodable");
        {
            let (mut j, _) = Journal::open(&path, true).unwrap();
            for (i, c) in sample_cmds().iter().enumerate() {
                j.append(i as u64 + 1, c).unwrap();
            }
        }
        // Hand-craft a CRC-valid frame whose payload is not a command
        // and splice it between record 1 and the rest.
        let bytes = std::fs::read(&path).unwrap();
        let first_len = 8 + u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let mut spliced = bytes[..first_len].to_vec();
        frame(br#"{"seq":2,"cmd":{"op":"frobnicate"}}"#, &mut spliced);
        spliced.extend_from_slice(&bytes[first_len..]);
        std::fs::write(&path, &spliced).unwrap();

        let (mut j, records) = Journal::open(&path, true).unwrap();
        assert_eq!(records.len(), 1, "replay keeps only the consistent prefix");
        // The file was truncated back to that prefix, so appends resume
        // on a clean boundary.
        j.append(2, &Command::RunRound { rounds: 1 }).unwrap();
        let (_, records) = Journal::open(&path, true).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn poisoned_journal_refuses_appends_until_reopen() {
        let path = tmp("poisoned");
        let (mut j, _) = Journal::open(&path, true).unwrap();
        j.append(1, &Command::RunRound { rounds: 1 }).unwrap();
        assert!(!j.is_poisoned());
        j.poison_for_test();
        let err = j.append(2, &Command::RunRound { rounds: 1 }).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        // Reopen re-scans the tail and clears the poison; the journal
        // resumes on a clean frame boundary.
        drop(j);
        let (mut j, records) = Journal::open(&path, true).unwrap();
        assert_eq!(records.len(), 1);
        assert!(!j.is_poisoned());
        j.append(2, &Command::RunRound { rounds: 1 }).unwrap();
        let (_, records) = Journal::open(&path, true).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn truncate_prefix_drops_covered_records_and_keeps_appending() {
        let path = tmp("compact");
        let (mut j, _) = Journal::open(&path, true).unwrap();
        for (i, c) in sample_cmds().iter().enumerate() {
            j.append(i as u64 + 1, c).unwrap();
        }
        let before = j.len().unwrap();
        let dropped = j.truncate_prefix(2).unwrap();
        assert!(dropped > 0);
        assert_eq!(j.len().unwrap(), before - dropped);
        // A second compaction at the same boundary is a no-op.
        assert_eq!(j.truncate_prefix(2).unwrap(), 0);
        // Appends land in the *new* inode, on a clean frame boundary.
        j.append(4, &Command::RunRound { rounds: 7 }).unwrap();
        drop(j);
        let (_, records) = Journal::open(&path, true).unwrap();
        let seqs: Vec<u64> = records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn truncate_prefix_refused_on_poisoned_journal() {
        let path = tmp("compact-poisoned");
        let (mut j, _) = Journal::open(&path, true).unwrap();
        j.append(1, &Command::RunRound { rounds: 1 }).unwrap();
        j.poison_for_test();
        assert!(j.truncate_prefix(1).is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
