//! The coordinator side of the distributed exchange: a [`WorkerPool`]
//! that farms the candidate phase of every round out to shard-worker
//! processes over the internal RPC surface, keeps the workers
//! bit-exact replicas by forwarding the journaled command stream, and
//! **re-dispatches** a dead worker's shards to the live ones mid-round.
//!
//! The coordinator stays authoritative for everything that matters:
//! it owns the journal (durability), the global clearing pass, and
//! settlement ordering. Workers are disposable accelerators — when
//! every worker is dead, [`RoundDistributor::candidates`] returns
//! `None` and the round computes locally, so worker availability is a
//! throughput concern, never a correctness one.
//!
//! Wiring (see `examples/` and the e2e tests):
//!
//! ```no_run
//! use std::sync::Arc;
//! use dmp_core::market::MarketConfig;
//! use dmp_service::coordinator::WorkerPool;
//! use dmp_service::node::{ServiceConfig, ServiceNode};
//!
//! let node = Arc::new(ServiceNode::open(ServiceConfig::new("./data", MarketConfig::external(7))).unwrap());
//! let pool = Arc::new(WorkerPool::connect(node.fingerprint(), node.config().shards, &[
//!     "127.0.0.1:9001".parse().unwrap(),
//! ]).unwrap());
//! pool.provision_all(&node);        // ship the current state to every worker
//! WorkerPool::attach(&pool, &node); // follow the journal + distribute rounds
//! ```

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dmp_core::arbiter::pipeline::CandidatePhaseExport;
use dmp_telemetry::log;
use parking_lot::Mutex;

use crate::client::Client;
use crate::codec;
use crate::command::Command;
use crate::metrics::metrics;
use crate::node::{CommandFollower, ServiceNode};
use crate::shard::RoundDistributor;
use crate::state::{self, enc_u64, enc_usize};
use crate::wire::Json;

/// One remote worker: a keep-alive client plus a liveness flag. A
/// worker that fails an RPC (connection error, protocol refusal) is
/// taken out of rotation until [`WorkerPool::provision`] revives it —
/// a refusal means the replica diverged, and a diverged replica must
/// not compute candidate phases.
struct RemoteWorker {
    addr: SocketAddr,
    client: Mutex<Client>,
    alive: AtomicBool,
}

/// Client pool over N shard workers, implementing both coordinator
/// hooks: [`CommandFollower`] (forward the journaled command stream)
/// and [`RoundDistributor`] (farm out candidate phases, broadcast
/// settlement).
pub struct WorkerPool {
    fingerprint: String,
    shards: usize,
    workers: Vec<RemoteWorker>,
}

impl WorkerPool {
    /// Connect to every worker address. Workers must already be
    /// listening; they may still be at genesis state (run
    /// [`WorkerPool::provision_all`] before attaching).
    pub fn connect(
        fingerprint: String,
        shards: usize,
        addrs: &[SocketAddr],
    ) -> std::io::Result<WorkerPool> {
        let mut workers = Vec::with_capacity(addrs.len());
        for &addr in addrs {
            workers.push(RemoteWorker {
                addr,
                client: Mutex::new(Client::connect(addr)?),
                alive: AtomicBool::new(true),
            });
        }
        Ok(WorkerPool {
            fingerprint,
            shards,
            workers,
        })
    }

    /// Install the pool as `node`'s journal follower and round
    /// distributor. Call only on an already-recovered node: replay
    /// must neither forward nor distribute.
    pub fn attach(pool: &Arc<WorkerPool>, node: &ServiceNode) {
        node.set_follower(Arc::clone(pool) as Arc<dyn CommandFollower>);
        node.router()
            .set_distributor(Arc::clone(pool) as Arc<dyn RoundDistributor>);
    }

    /// Total workers (live or dead).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Workers currently in rotation.
    pub fn live_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .count()
    }

    /// One RPC to one worker, timed into the per-RPC latency series.
    /// Any failure — transport error, protocol refusal — takes the
    /// worker out of rotation and returns `None`; the caller decides
    /// whether the work re-dispatches.
    fn rpc(
        &self,
        idx: usize,
        rpc: &str,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Option<Json> {
        let worker = self.workers.get(idx)?;
        if !worker.alive.load(Ordering::Relaxed) {
            return None;
        }
        let m = metrics();
        // Wall-clock is fine here: RPC latency telemetry, never applied state.
        let started = Instant::now();
        let result = worker.client.lock().request(method, path, body);
        m.worker_rpc_us(rpc).record_duration_us(started.elapsed());
        match result {
            Ok((200, json)) => Some(json),
            Ok((status, json)) => {
                m.worker_rpc_failures.inc();
                worker.alive.store(false, Ordering::Relaxed);
                log!(
                    Warn,
                    "worker {} refused {path} with {status}: {} — out of rotation",
                    worker.addr,
                    json.dump()
                );
                None
            }
            Err(e) => {
                m.worker_rpc_failures.inc();
                worker.alive.store(false, Ordering::Relaxed);
                log!(
                    Warn,
                    "worker {} failed {path}: {e} — out of rotation",
                    worker.addr
                );
                None
            }
        }
    }

    /// Ship `node`'s current state to worker `idx` (`/internal/restore`)
    /// under a quiesced apply path, reviving it into rotation on
    /// success. This is the journal-backed re-dispatch path for a
    /// *replacement* worker: restore to the coordinator's consistent
    /// cut, then follow the live command stream from there.
    pub fn provision(&self, node: &ServiceNode, idx: usize) -> bool {
        let Some(worker) = self.workers.get(idx) else {
            return false;
        };
        let (image, applied) =
            node.quiesced(|router, applied| (state::encode(&router.export_state()), applied));
        let body = Json::obj([
            ("fp", Json::str(self.fingerprint.clone())),
            ("applied", enc_u64(applied)),
            (
                "state",
                Json::obj([
                    ("substrate", image.substrate),
                    ("shards", Json::Arr(image.shards)),
                    ("router", image.router),
                ]),
            ),
        ]);
        // Mark alive first so `rpc` will talk to a currently-dead
        // worker; a failure flips it right back.
        worker.alive.store(true, Ordering::Relaxed);
        let revived = self
            .rpc(idx, "restore", "POST", "/internal/restore", Some(&body))
            .is_some();
        if revived {
            log!(Info, "worker {} provisioned at seq {applied}", worker.addr);
        }
        revived
    }

    /// Provision every worker; returns how many are in rotation after.
    pub fn provision_all(&self, node: &ServiceNode) -> usize {
        (0..self.workers.len())
            .filter(|&idx| self.provision(node, idx))
            .count()
    }

    /// Fan one request out to a set of workers concurrently (one
    /// scoped thread per target — worker RPCs overlap, which is the
    /// entire point of distributing the candidate phase), pairing each
    /// worker index with its reply (`None` = that worker failed).
    fn fan_out(
        &self,
        targets: Vec<(usize, Json)>,
        rpc: &str,
        path: &str,
    ) -> Vec<(usize, Option<Json>)> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = targets
                .into_iter()
                .map(|(idx, body)| {
                    scope.spawn(move || (idx, self.rpc(idx, rpc, "POST", path, Some(&body))))
                })
                .collect();
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        })
    }

    /// Indices of workers currently in rotation.
    fn live_indices(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive.load(Ordering::Relaxed))
            .map(|(i, _)| i)
            .collect()
    }
}

impl CommandFollower for WorkerPool {
    /// Forward one journaled command to every live worker. Runs inside
    /// the coordinator's apply critical section, so deliveries across
    /// workers happen in journal order; per worker, the keep-alive
    /// connection's FIFO preserves it on the wire. `RunRound` is *not*
    /// forwarded — rounds reach workers through the candidates/settle
    /// RPC pair that executes inside `router.apply` itself.
    fn on_applied(&self, seq: u64, cmd: &Command) {
        if matches!(cmd, Command::RunRound { .. }) {
            return;
        }
        let body = Json::obj([
            ("fp", Json::str(self.fingerprint.clone())),
            ("seq", enc_u64(seq)),
            ("cmd", cmd.encode()),
        ]);
        let targets: Vec<(usize, Json)> = self
            .live_indices()
            .into_iter()
            .map(|i| (i, body.clone()))
            .collect();
        self.fan_out(targets, "apply", "/internal/apply");
    }
}

impl RoundDistributor for WorkerPool {
    /// Farm the candidate phase out: assign shards round-robin over
    /// the live workers, collect exports, and re-dispatch any failed
    /// worker's shards to the survivors. Returns `None` only when no
    /// worker is left — the round then computes locally and the
    /// deployment degrades to a single process instead of stalling.
    fn candidates(
        &self,
        round: u64,
        round_seed: u64,
        shards: usize,
    ) -> Option<Vec<CandidatePhaseExport>> {
        if shards != self.shards {
            return None; // mis-wired pool: fall back to local compute
        }
        let mut collected: Vec<Option<CandidatePhaseExport>> = (0..shards).map(|_| None).collect();
        let mut todo: Vec<usize> = (0..shards).collect();
        let mut dispatched_before = false;
        while !todo.is_empty() {
            let live = self.live_indices();
            if live.is_empty() {
                log!(
                    Warn,
                    "round {round}: every worker is dead; computing candidates locally"
                );
                return None;
            }
            if dispatched_before {
                // These shards already went to a worker that died:
                // this pass is a re-dispatch.
                metrics().worker_redispatch.add(todo.len() as u64);
                log!(
                    Info,
                    "round {round}: re-dispatching {} shard(s) across {} live worker(s)",
                    todo.len(),
                    live.len()
                );
            }
            dispatched_before = true;
            // Round-robin the outstanding shards over the live workers.
            let mut assignment: Vec<(usize, Vec<usize>)> =
                live.iter().map(|&w| (w, Vec::new())).collect();
            for (k, &shard) in todo.iter().enumerate() {
                if let Some((_, list)) = assignment.get_mut(k % live.len()) {
                    list.push(shard);
                }
            }
            let targets: Vec<(usize, Json)> = assignment
                .into_iter()
                .filter(|(_, list)| !list.is_empty())
                .map(|(w, list)| {
                    let body = Json::obj([
                        ("fp", Json::str(self.fingerprint.clone())),
                        ("round", enc_u64(round)),
                        ("seed", enc_u64(round_seed)),
                        (
                            "shards",
                            Json::Arr(list.iter().map(|&s| enc_usize(s)).collect()),
                        ),
                    ]);
                    (w, body)
                })
                .collect();
            for (_, reply) in self.fan_out(targets, "candidates", "/internal/candidates") {
                let Some(reply) = reply else { continue };
                let pairs = match crate::state::field(&reply, "exports")
                    .and_then(|j| codec::decode_indexed_exports(j, shards))
                {
                    Ok(pairs) => pairs,
                    Err(e) => {
                        log!(Warn, "round {round}: undecodable candidate reply: {e}");
                        continue;
                    }
                };
                for (shard, export) in pairs {
                    if let Some(slot) = collected.get_mut(shard) {
                        *slot = Some(export);
                    }
                }
            }
            todo = collected
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.is_none())
                .map(|(i, _)| i)
                .collect();
        }
        collected.into_iter().collect()
    }

    /// Broadcast the settled round's full export set so every live
    /// worker re-executes clearing + settlement and stays a replica. A
    /// worker that fails here leaves rotation; its shards re-dispatch
    /// next round.
    fn round_complete(&self, round: u64, round_seed: u64, exports: &[CandidatePhaseExport]) {
        let body = Json::obj([
            ("fp", Json::str(self.fingerprint.clone())),
            ("round", enc_u64(round)),
            ("seed", enc_u64(round_seed)),
            ("exports", codec::encode_exports(exports)),
        ]);
        let targets: Vec<(usize, Json)> = self
            .live_indices()
            .into_iter()
            .map(|i| (i, body.clone()))
            .collect();
        self.fan_out(targets, "settle", "/internal/settle");
    }
}
