//! Compaction crash-injection: kill the checkpoint procedure at every
//! ordering point between "snapshot written" and "journal truncated"
//! and prove recovery is **bit-identical** to the uncrashed node.
//!
//! The checkpoint sequence under bounded retention is:
//!
//! ```text
//! 1. write snapshot tmp            (crash → stale .tmp, journal intact)
//! 2. rename tmp → snapshot-N.dmp   (crash → extra snapshot, journal intact)
//! 3. verify on-disk snapshot       (crash → same as 2)
//! 4. prune old snapshots           (crash → fewer snapshots, journal intact)
//! 5. write journal.compact         (crash → stale .compact, journal intact)
//! 6. rename .compact → journal.wal (crash → truncated journal + snapshot)
//! ```
//!
//! Every intermediate directory state must recover to the same state
//! digest as a node that never crashed, and keep accepting commands.

use std::path::{Path, PathBuf};

use dmp_core::market::MarketConfig;
use dmp_mechanism::design::MarketDesign;
use dmp_service::command::{AskSpec, CellSpec, ColType, Command, OfferSpec, TableSpec};
use dmp_service::journal::Journal;
use dmp_service::node::{ServiceConfig, ServiceNode};
use dmp_service::snapshot;
use rand::{Rng, SeedableRng};

const SHARDS: usize = 3;
const SNAPSHOT_EVERY: u64 = 6;

fn market_config() -> MarketConfig {
    MarketConfig::external(51).with_design(MarketDesign::posted_price_baseline(11.0))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmp-compact-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A short mixed stream: enough commands to cross several snapshot
/// boundaries (snapshots at 6, 12, 18 for 20 commands).
fn command_stream() -> Vec<Command> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xc0de);
    let mut cmds = Vec::new();
    for i in 0..3 {
        cmds.push(Command::Enroll {
            name: format!("seller{i}"),
            role: "seller".into(),
        });
        cmds.push(Command::Enroll {
            name: format!("buyer{i}"),
            role: "buyer".into(),
        });
        cmds.push(Command::Deposit {
            account: format!("buyer{i}"),
            amount: 300.0,
        });
    }
    while cmds.len() < 19 {
        match rng.gen_range(0u32..3) {
            0 => cmds.push(Command::SubmitAsk(AskSpec {
                seller: format!("seller{}", rng.gen_range(0usize..3)),
                table: TableSpec {
                    name: format!("t{}", cmds.len()),
                    columns: vec![("a".into(), ColType::Float), ("b".into(), ColType::Float)],
                    rows: (0..3)
                        .map(|_| {
                            vec![
                                CellSpec::Float(rng.gen_range(0i64..100) as f64 / 4.0),
                                CellSpec::Float(rng.gen_range(0i64..100) as f64 / 4.0),
                            ]
                        })
                        .collect(),
                },
                reserve: None,
                license: None,
            })),
            1 => cmds.push(Command::SubmitOffer(OfferSpec::simple(
                format!("buyer{}", rng.gen_range(0usize..3)),
                ["a", "b"],
                rng.gen_range(5i64..30) as f64,
            ))),
            _ => cmds.push(Command::RunRound { rounds: 1 }),
        }
    }
    cmds.push(Command::RunRound { rounds: 1 });
    cmds
}

fn config(dir: &Path, keep: usize) -> ServiceConfig {
    ServiceConfig::new(dir, market_config())
        .with_shards(SHARDS)
        .with_snapshot_every(SNAPSHOT_EVERY)
        .with_fsync(false)
        .with_keep_snapshots(keep)
}

/// Donor state: run with unbounded retention so the full journal *and*
/// every snapshot survive — the crash cases are carved out of this.
struct Donor {
    dir: PathBuf,
    digest: u64,
    applied: u64,
    snapshot_seqs: Vec<u64>,
}

fn donor() -> Donor {
    let dir = tmp_dir("donor");
    let node = ServiceNode::open(config(&dir, 0)).unwrap();
    for cmd in command_stream() {
        let _ = node.apply(cmd);
    }
    let digest = node.state_digest();
    let applied = node.applied();
    let snapshot_seqs: Vec<u64> = snapshot::list_snapshots(&dir)
        .into_iter()
        .map(|(seq, _)| seq)
        .collect();
    assert!(
        snapshot_seqs.len() >= 3,
        "donor run must cross ≥3 snapshot boundaries, got {snapshot_seqs:?}"
    );
    Donor {
        dir,
        digest,
        applied,
        snapshot_seqs,
    }
}

/// Materialize a crash directory: the donor journal plus the snapshots
/// whose seq passes `keep_snapshot`.
fn carve(donor: &Donor, name: &str, keep_snapshot: impl Fn(u64) -> bool) -> PathBuf {
    let dir = tmp_dir(name);
    std::fs::copy(donor.dir.join("journal.wal"), dir.join("journal.wal")).unwrap();
    std::fs::copy(donor.dir.join("node.meta"), dir.join("node.meta")).unwrap();
    for (seq, path) in snapshot::list_snapshots(&donor.dir) {
        if keep_snapshot(seq) {
            std::fs::copy(&path, dir.join(path.file_name().unwrap())).unwrap();
        }
    }
    dir
}

/// Recover `dir` under bounded retention and require the exact donor
/// state, then prove the node still takes writes and re-recovers.
fn assert_recovers_bit_identical(donor: &Donor, dir: &Path, case: &str) {
    let node = ServiceNode::open(config(dir, 1)).unwrap();
    assert_eq!(node.applied(), donor.applied, "{case}: applied seq");
    assert_eq!(node.state_digest(), donor.digest, "{case}: state digest");
    node.apply(Command::Enroll {
        name: "post-crash".into(),
        role: "buyer".into(),
    })
    .unwrap();
    let digest_after = node.state_digest();
    drop(node);
    let reopened = ServiceNode::open(config(dir, 1)).unwrap();
    assert_eq!(
        reopened.state_digest(),
        digest_after,
        "{case}: post-crash appends must replay"
    );
}

#[test]
fn crash_with_stale_snapshot_tmp_recovers() {
    let d = donor();
    // Crash between tmp write and rename: the newest snapshot never
    // landed, a garbage .tmp did.
    let newest = *d.snapshot_seqs.last().unwrap();
    let dir = carve(&d, "tmp-stale", |seq| seq < newest);
    std::fs::write(
        dir.join(format!("snapshot-{newest:020}.tmp")),
        b"half-written snapshot",
    )
    .unwrap();
    assert_recovers_bit_identical(&d, &dir, "stale-tmp");
    assert!(
        !dir.join(format!("snapshot-{newest:020}.tmp")).exists(),
        "open must sweep the stale tmp"
    );
}

#[test]
fn crash_after_snapshot_durable_before_prune_recovers() {
    let d = donor();
    // All snapshots present, journal untouched: the prune never ran.
    let dir = carve(&d, "pre-prune", |_| true);
    assert_recovers_bit_identical(&d, &dir, "pre-prune");
}

#[test]
fn crash_after_prune_before_truncate_recovers() {
    let d = donor();
    // Only the newest snapshot survives, journal still full-length.
    let newest = *d.snapshot_seqs.last().unwrap();
    let dir = carve(&d, "pre-truncate", |seq| seq == newest);
    assert_recovers_bit_identical(&d, &dir, "pre-truncate");
}

#[test]
fn crash_with_stale_journal_compact_recovers() {
    let d = donor();
    // Crash between writing journal.compact and the rename: the live
    // journal is intact and the partial copy must be discarded.
    let newest = *d.snapshot_seqs.last().unwrap();
    let dir = carve(&d, "compact-stale", |seq| seq == newest);
    std::fs::write(dir.join("journal.compact"), b"partial compacted journal").unwrap();
    assert_recovers_bit_identical(&d, &dir, "stale-compact");
    assert!(
        !dir.join("journal.compact").exists(),
        "open must remove the stale journal.compact"
    );
}

#[test]
fn crash_after_truncate_recovers_from_snapshot_plus_tail() {
    let d = donor();
    // The completed compaction: journal holds only seq > newest.
    let newest = *d.snapshot_seqs.last().unwrap();
    let dir = carve(&d, "post-truncate", |seq| seq == newest);
    {
        let (mut journal, _) = Journal::open(dir.join("journal.wal"), false).unwrap();
        let dropped = journal.truncate_prefix(newest).unwrap();
        assert!(dropped > 0, "truncation must actually drop the prefix");
    }
    assert_recovers_bit_identical(&d, &dir, "post-truncate");
}

/// End-to-end: a node *running* with bounded retention compacts as it
/// goes, its journal stays shorter than the unbounded donor's, and its
/// recovered state is identical.
#[test]
fn live_compaction_shrinks_journal_and_matches_donor() {
    let d = donor();
    let dir = tmp_dir("live");
    let node = ServiceNode::open(config(&dir, 1)).unwrap();
    for cmd in command_stream() {
        let _ = node.apply(cmd);
    }
    assert_eq!(
        node.state_digest(),
        d.digest,
        "live compaction changed state"
    );
    let compacted = node.journal_len().unwrap();
    let full = std::fs::metadata(d.dir.join("journal.wal")).unwrap().len();
    assert!(
        compacted < full,
        "compaction did not shrink the journal: {compacted} >= {full}"
    );
    assert_eq!(
        snapshot::list_snapshots(&dir).len(),
        1,
        "retention must keep exactly one snapshot"
    );
    drop(node);
    let recovered = ServiceNode::open(config(&dir, 1)).unwrap();
    assert_eq!(recovered.state_digest(), d.digest);
    assert_eq!(recovered.applied(), d.applied);
}
