//! Materialized-state codec properties: for any reachable market state,
//! `decode(encode(state))` restores into a **digest-identical** router —
//! including a full trip through the wire JSON text the snapshot file
//! actually stores (floats travel as bit patterns, so the round trip is
//! exact even for values a decimal float repr would perturb).

use dmp_core::market::MarketConfig;
use dmp_mechanism::design::MarketDesign;
use dmp_service::command::{
    AskSpec, CellSpec, ColType, Command, CurveSpec, LicenseSpec, OfferSpec, TableSpec, TaskSpec,
};
use dmp_service::shard::ShardRouter;
use dmp_service::state::{self, StateImage};
use dmp_service::Json;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn market_config(seed: u64) -> MarketConfig {
    MarketConfig::external(seed).with_design(MarketDesign::posted_price_baseline(12.0))
}

/// Random mixed command stream, including the corners the codec must
/// carry exactly: mashup provenance (cleared trades), exclusive holds,
/// licenses, escrows, expired offers and audit history.
fn command_stream(rounds: usize, seed: u64) -> Vec<Command> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cmds = Vec::new();
    let attrs = ["a", "b", "c"];
    for i in 0..3 {
        cmds.push(Command::Enroll {
            name: format!("seller{i}"),
            role: "seller".into(),
        });
        cmds.push(Command::Enroll {
            name: format!("buyer{i}"),
            role: "buyer".into(),
        });
        cmds.push(Command::Deposit {
            account: format!("buyer{i}"),
            amount: 100.0 + (rng.gen_range(0i64..1000) as f64) / 7.0,
        });
    }
    for round in 0..rounds {
        for _ in 0..rng.gen_range(1usize..4) {
            match rng.gen_range(0u32..8) {
                0..=2 => {
                    let start = rng.gen_range(0usize..attrs.len() - 1);
                    let width = rng.gen_range(1usize..=attrs.len() - start);
                    let cols: Vec<(String, ColType)> = attrs[start..start + width]
                        .iter()
                        .map(|c| (c.to_string(), ColType::Float))
                        .collect();
                    let rows = (0..rng.gen_range(1usize..4))
                        .map(|_| {
                            cols.iter()
                                .map(|_| CellSpec::Float((rng.gen_range(0i64..1000) as f64) / 3.0))
                                .collect()
                        })
                        .collect();
                    cmds.push(Command::SubmitAsk(AskSpec {
                        seller: format!("seller{}", rng.gen_range(0usize..3)),
                        table: TableSpec {
                            name: format!("t{round}_{}", cmds.len()),
                            columns: cols,
                            rows,
                        },
                        reserve: if rng.gen_bool(0.4) {
                            Some((rng.gen_range(0i64..30) as f64) / 7.0)
                        } else {
                            None
                        },
                        license: if rng.gen_bool(0.3) {
                            Some(LicenseSpec::Exclusive {
                                tax_rate: 0.35,
                                hold_rounds: 2,
                            })
                        } else {
                            None
                        },
                    }));
                }
                3..=5 => {
                    let start = rng.gen_range(0usize..attrs.len() - 1);
                    let width = rng.gen_range(1usize..=attrs.len() - start);
                    cmds.push(Command::SubmitOffer(OfferSpec {
                        buyer: format!("buyer{}", rng.gen_range(0usize..3)),
                        attributes: attrs[start..start + width]
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                        keywords: Vec::new(),
                        task: TaskSpec::AttributeCoverage,
                        curve: CurveSpec::Constant((rng.gen_range(5i64..200) as f64) / 9.0),
                        min_rows: 1,
                        purpose: "analytics".into(),
                    }));
                }
                6 => cmds.push(Command::GrantLicense {
                    seller: format!("seller{}", rng.gen_range(0usize..3)),
                    dataset: rng.gen_range(0u64..5),
                    license: LicenseSpec::NonTransferable,
                }),
                _ => cmds.push(Command::Deposit {
                    account: format!("buyer{}", rng.gen_range(0usize..3)),
                    amount: (rng.gen_range(1i64..500) as f64) / 11.0,
                }),
            }
        }
        cmds.push(Command::RunRound { rounds: 1 });
    }
    cmds
}

/// Push the image through the exact persistence the snapshot file uses:
/// dump each tree to JSON text and parse it back.
fn through_wire(image: &StateImage) -> StateImage {
    let trip = |j: &Json| Json::parse(&j.dump()).expect("dumped tree must re-parse");
    StateImage {
        substrate: trip(&image.substrate),
        shards: image.shards.iter().map(trip).collect(),
        router: trip(&image.router),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The pinned property: encode → (JSON text) → decode → restore
    /// reproduces the state digest for any reachable state, on any
    /// shard count.
    #[test]
    fn decode_encode_round_trip_is_digest_identical(
        seed in 0u64..10_000,
        rounds in 1usize..5,
        shards in 1usize..5,
    ) {
        let router = ShardRouter::new(&market_config(seed), shards);
        for cmd in command_stream(rounds, seed) {
            let _ = router.apply(&cmd);
        }
        let digest = router.state_digest();

        let encoded = state::encode(&router.export_state());
        let image = state::decode(&through_wire(&encoded))
            .expect("encoded state must decode");
        let restored = ShardRouter::new(&market_config(seed), shards);
        restored.restore_state(image).expect("decoded state must restore");

        prop_assert_eq!(
            restored.state_digest(),
            digest,
            "decode(encode(state)) diverged (seed {}, {} shards)",
            seed,
            shards
        );
        // And the restored state re-encodes to the identical wire text:
        // encoding is a pure function of the state.
        let reencoded = state::encode(&restored.export_state());
        prop_assert_eq!(reencoded.substrate.dump(), encoded.substrate.dump());
        prop_assert_eq!(reencoded.router.dump(), encoded.router.dump());
        let shard_text = |img: &StateImage| {
            img.shards.iter().map(|s| s.dump()).collect::<Vec<_>>()
        };
        prop_assert_eq!(shard_text(&reencoded), shard_text(&encoded));
    }
}

/// Non-vacuity: the streams really do produce trades, mashup
/// provenance, escrows and licenses — the property above is exercising
/// a populated state, not an empty market.
#[test]
fn property_streams_populate_the_state() {
    let mut sales = 0usize;
    for seed in 0..8u64 {
        let router = ShardRouter::new(&market_config(seed), 3);
        for cmd in command_stream(4, seed) {
            if let Ok(dmp_service::shard::Outcome::RoundsRun(reports)) = router.apply(&cmd) {
                sales += reports.iter().map(|r| r.sales).sum::<usize>();
            }
        }
    }
    assert!(sales > 0, "streams never cleared a sale — vacuous property");
}
