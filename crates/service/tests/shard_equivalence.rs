//! Shard-count equivalence: **sharding is a performance detail, not a
//! semantics change**. The same command stream replayed into a 1-shard
//! and an M-shard deployment must produce the same cleared trades, the
//! same ledger balances (bit-for-bit), the same offer lifecycle and the
//! same merged round totals — the two-phase exchange (global candidate
//! merge → one clearing pass → ordered settlement on the shared ledger)
//! is exactly what makes this hold.
//!
//! A property test replays random mixed command streams into 1-shard
//! and 4-shard routers; deterministic tests pin the cross-shard unlock
//! itself (a buyer matching a seller on another shard) and the
//! node-level recovery path.

use dmp_core::market::{MarketConfig, OfferState};
use dmp_mechanism::design::MarketDesign;
use dmp_service::command::{
    AskSpec, CellSpec, ColType, Command, CurveSpec, LicenseSpec, OfferSpec, TableSpec, TaskSpec,
};
use dmp_service::node::{ServiceConfig, ServiceNode};
use dmp_service::shard::{MergedRoundReport, Outcome, ShardRouter};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn market_config(seed: u64) -> MarketConfig {
    MarketConfig::external(seed).with_design(MarketDesign::posted_price_baseline(12.0))
}

/// A deterministic stream of mixed commands: enrolls, deposits, asks
/// over a small shared attribute pool (so buyers on one shard need
/// sellers from another), offers, occasional exclusive licenses, and
/// round executions.
fn command_stream(rounds: usize, seed: u64) -> Vec<Command> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cmds = Vec::new();
    let attrs = ["a", "b", "c", "d"];
    for i in 0..5 {
        cmds.push(Command::Enroll {
            name: format!("seller{i}"),
            role: "seller".into(),
        });
        cmds.push(Command::Enroll {
            name: format!("buyer{i}"),
            role: "buyer".into(),
        });
        cmds.push(Command::Deposit {
            account: format!("buyer{i}"),
            amount: 200.0 + i as f64,
        });
    }
    let mut datasets_shared = 0u64;
    for round in 0..rounds {
        for _ in 0..rng.gen_range(1..4) {
            match rng.gen_range(0..10) {
                0..=3 => {
                    // A seller shares a table covering a random slice of
                    // the attribute pool.
                    let start = rng.gen_range(0..attrs.len() - 1);
                    let width = rng.gen_range(1..=attrs.len() - start);
                    let cols: Vec<(String, ColType)> = attrs[start..start + width]
                        .iter()
                        .map(|c| (c.to_string(), ColType::Float))
                        .collect();
                    let rows = (0..rng.gen_range(2..6))
                        .map(|_| {
                            cols.iter()
                                .map(|_| CellSpec::Float(rng.gen_range(0i64..500) as f64 / 10.0))
                                .collect()
                        })
                        .collect();
                    cmds.push(Command::SubmitAsk(AskSpec {
                        seller: format!("seller{}", rng.gen_range(0..5)),
                        table: TableSpec {
                            name: format!("t{round}_{}", cmds.len()),
                            columns: cols,
                            rows,
                        },
                        reserve: if rng.gen_bool(0.3) {
                            Some(rng.gen_range(0i64..8) as f64)
                        } else {
                            None
                        },
                        license: if rng.gen_bool(0.2) {
                            Some(LicenseSpec::Exclusive {
                                tax_rate: 0.25,
                                hold_rounds: 2,
                            })
                        } else {
                            None
                        },
                    }));
                    datasets_shared += 1;
                }
                4..=7 => {
                    // A buyer wants a random slice of the pool.
                    let start = rng.gen_range(0..attrs.len() - 1);
                    let width = rng.gen_range(1..=attrs.len() - start);
                    cmds.push(Command::SubmitOffer(OfferSpec {
                        buyer: format!("buyer{}", rng.gen_range(0..5)),
                        attributes: attrs[start..start + width]
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                        keywords: Vec::new(),
                        task: TaskSpec::AttributeCoverage,
                        curve: CurveSpec::Constant(rng.gen_range(10i64..40) as f64),
                        min_rows: 1,
                        purpose: "analytics".into(),
                    }));
                }
                8 if datasets_shared > 0 => {
                    cmds.push(Command::GrantLicense {
                        seller: format!("seller{}", rng.gen_range(0..5)),
                        dataset: rng.gen_range(0..datasets_shared),
                        license: LicenseSpec::Standard,
                    });
                }
                _ => {
                    cmds.push(Command::Deposit {
                        account: format!("buyer{}", rng.gen_range(0..5)),
                        amount: rng.gen_range(1i64..50) as f64,
                    });
                }
            }
        }
        cmds.push(Command::RunRound { rounds: 1 });
    }
    cmds
}

/// One settled trade, shard-count-independently keyed: `(round, global
/// offer id, buyer, price bits, fee bits, satisfaction bits, datasets)`.
type TradeKey = (u64, u64, String, u64, u64, u64, Vec<u64>);

/// All settled trades across shards, sorted. Transaction ids are
/// shard-local counters and deliberately excluded.
fn trades(router: &ShardRouter) -> Vec<TradeKey> {
    let mut out: Vec<_> = router
        .shards()
        .iter()
        .flat_map(|m| m.transactions())
        .map(|t| {
            (
                t.round,
                t.offer_id,
                t.buyer.clone(),
                t.price.to_bits(),
                t.fee.to_bits(),
                t.satisfaction.to_bits(),
                t.datasets.iter().map(|d| d.0).collect::<Vec<u64>>(),
            )
        })
        .collect();
    out.sort();
    out
}

/// Offer lifecycle keyed by global offer id, with shard-local record
/// ids (tx / delivery) normalized away.
fn offer_states(router: &ShardRouter) -> Vec<(u64, &'static str)> {
    let mut out: Vec<_> = router
        .shards()
        .iter()
        .flat_map(|m| m.offers())
        .map(|o| {
            (
                o.id,
                match o.state {
                    OfferState::Pending => "pending",
                    OfferState::Fulfilled { .. } => "fulfilled",
                    OfferState::AwaitingReport { .. } => "awaiting",
                    OfferState::Expired => "expired",
                },
            )
        })
        .collect();
    out.sort();
    out
}

/// Ledger balances + open escrows, bit-exact.
type LedgerKey = (Vec<(String, u64)>, Vec<(u64, String, u64)>);

fn ledger_state(router: &ShardRouter) -> LedgerKey {
    let balances = router
        .all_balances()
        .into_iter()
        .map(|(name, bal)| (name, bal.to_bits()))
        .collect();
    let escrows = router.shards()[0]
        .ledger()
        .escrow_holds()
        .into_iter()
        .map(|(id, holder, rem)| (id, holder, rem.to_bits()))
        .collect();
    (balances, escrows)
}

/// Round-report totals at micro-credit precision (shard sub-sums add in
/// a different order than the 1-shard stream, so money totals are
/// compared at the ledger's own granularity).
fn report_totals(r: &MergedRoundReport) -> (u64, usize, usize, i64, i64, usize, usize) {
    let micros = |x: f64| (x * 1e6).round() as i64;
    (
        r.round,
        r.considered,
        r.sales,
        micros(r.revenue),
        micros(r.fees),
        r.expired,
        r.deliveries,
    )
}

/// Apply a stream to a fresh router with `shards` shards, collecting
/// every merged round report along the way.
fn replay(cmds: &[Command], seed: u64, shards: usize) -> (ShardRouter, Vec<MergedRoundReport>) {
    let router = ShardRouter::new(&market_config(seed), shards);
    let mut reports = Vec::new();
    for cmd in cmds {
        if let Ok(Outcome::RoundsRun(mut r)) = router.apply(cmd) {
            reports.append(&mut r);
        }
    }
    (router, reports)
}

fn assert_equivalent(cmds: &[Command], seed: u64, shards: usize) {
    let (mono, mono_reports) = replay(cmds, seed, 1);
    let (multi, multi_reports) = replay(cmds, seed, shards);

    assert_eq!(
        ledger_state(&mono),
        ledger_state(&multi),
        "seed {seed}: {shards}-shard ledger diverged from 1-shard"
    );
    assert_eq!(
        trades(&mono),
        trades(&multi),
        "seed {seed}: {shards}-shard trades diverged from 1-shard"
    );
    assert_eq!(
        offer_states(&mono),
        offer_states(&multi),
        "seed {seed}: {shards}-shard offer lifecycle diverged"
    );
    assert_eq!(mono_reports.len(), multi_reports.len());
    for (a, b) in mono_reports.iter().zip(&multi_reports) {
        assert_eq!(
            report_totals(a),
            report_totals(b),
            "seed {seed}: round {} report diverged",
            a.round
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: random mixed command streams clear
    /// identically on 1 shard and on 4 shards.
    #[test]
    fn four_shards_clear_like_one(seed in 0u64..10_000) {
        let cmds = command_stream(5, seed);
        assert_equivalent(&cmds, seed, 4);
    }

    /// Shard counts that do not divide the participant population
    /// evenly behave the same way.
    #[test]
    fn odd_shard_counts_clear_like_one(seed in 0u64..10_000, shards in 2usize..6) {
        let cmds = command_stream(3, seed);
        assert_equivalent(&cmds, seed, shards);
    }
}

/// Non-vacuity guard for the property above: the random streams really
/// do clear trades (and cross-shard ones), so the equivalence assertions
/// are comparing real settlements, not empty markets.
#[test]
fn random_streams_produce_cross_shard_trades() {
    let mut total_sales = 0usize;
    let mut total_cross = 0usize;
    for seed in 0..6u64 {
        let cmds = command_stream(5, seed);
        let (router, reports) = replay(&cmds, seed, 4);
        total_sales += reports.iter().map(|r| r.sales).sum::<usize>();
        total_cross += reports.iter().map(|r| r.cross_shard).sum::<usize>();
        let _ = router;
    }
    assert!(
        total_sales > 0,
        "streams never cleared a sale — vacuous suite"
    );
    assert!(
        total_cross > 0,
        "streams never crossed a shard — the tentpole is untested"
    );
}

/// The unlock itself: a buyer whose shard holds *no* datasets buys from
/// a seller on another shard, and the report says so.
#[test]
fn cross_shard_trade_clears_and_pays_the_remote_seller() {
    let router = ShardRouter::new(&market_config(11), 4);
    // Find a seller/buyer pair that hash to different shards.
    let (seller, buyer) = (0..100)
        .flat_map(|i| (0..100).map(move |j| (format!("s{i}"), format!("b{j}"))))
        .find(|(s, b)| router.shard_of(s) != router.shard_of(b))
        .expect("some pair must split across 4 shards");

    router
        .apply(&Command::Enroll {
            name: seller.clone(),
            role: "seller".into(),
        })
        .unwrap();
    router
        .apply(&Command::Enroll {
            name: buyer.clone(),
            role: "buyer".into(),
        })
        .unwrap();
    router
        .apply(&Command::Deposit {
            account: buyer.clone(),
            amount: 100.0,
        })
        .unwrap();
    router
        .apply(&Command::SubmitAsk(AskSpec {
            seller: seller.clone(),
            table: TableSpec {
                name: "t".into(),
                columns: vec![("k".into(), ColType::Int), ("v".into(), ColType::Str)],
                rows: vec![
                    vec![CellSpec::Int(1), CellSpec::Str("x".into())],
                    vec![CellSpec::Int(2), CellSpec::Str("y".into())],
                ],
            },
            reserve: None,
            license: None,
        }))
        .unwrap();
    router
        .apply(&Command::SubmitOffer(OfferSpec::simple(
            buyer.clone(),
            ["k", "v"],
            30.0,
        )))
        .unwrap();

    let out = router.apply(&Command::RunRound { rounds: 1 }).unwrap();
    let reports = match out {
        Outcome::RoundsRun(r) => r,
        other => panic!("unexpected outcome {other:?}"),
    };
    assert_eq!(reports[0].sales, 1, "the cross-shard offer must clear");
    assert_eq!(
        reports[0].cross_shard, 1,
        "the sale must be counted as a cross-shard trade"
    );
    assert!(
        router.balance(&seller) > 0.0,
        "the remote seller must be paid on the shared ledger"
    );
    assert!(router.balance(&buyer) < 100.0, "the buyer must have paid");
}

/// A cross-shard sale that clears but cannot settle (unfunded buyer)
/// is not a trade: the offer stays pending and the report counts
/// neither a sale nor a cross-shard trade.
#[test]
fn unfunded_cleared_sale_is_not_a_cross_shard_trade() {
    let router = ShardRouter::new(&market_config(11), 4);
    let (seller, buyer) = (0..100)
        .flat_map(|i| (0..100).map(move |j| (format!("s{i}"), format!("b{j}"))))
        .find(|(s, b)| router.shard_of(s) != router.shard_of(b))
        .expect("some pair must split across 4 shards");
    router
        .apply(&Command::Enroll {
            name: seller.clone(),
            role: "seller".into(),
        })
        .unwrap();
    router
        .apply(&Command::Enroll {
            name: buyer.clone(),
            role: "buyer".into(),
        })
        .unwrap();
    // No deposit: the bid clears at the posted price, settlement fails.
    router
        .apply(&Command::SubmitAsk(AskSpec {
            seller,
            table: TableSpec {
                name: "t".into(),
                columns: vec![("k".into(), ColType::Int), ("v".into(), ColType::Str)],
                rows: vec![vec![CellSpec::Int(1), CellSpec::Str("x".into())]],
            },
            reserve: None,
            license: None,
        }))
        .unwrap();
    router
        .apply(&Command::SubmitOffer(OfferSpec::simple(
            buyer,
            ["k", "v"],
            30.0,
        )))
        .unwrap();
    let out = router.apply(&Command::RunRound { rounds: 1 }).unwrap();
    let reports = match out {
        Outcome::RoundsRun(r) => r,
        other => panic!("unexpected outcome {other:?}"),
    };
    assert_eq!(reports[0].sales, 0, "unfunded sale must not settle");
    assert_eq!(
        reports[0].cross_shard, 0,
        "an unsettled sale must not be reported as a cross-shard trade"
    );
}

/// Node-level, materialized snapshots: a 4-shard node running with
/// bounded retention (so recovery goes through *snapshot restore +
/// compacted-journal tail*, not full replay) still matches a 1-shard
/// node that never touched disk — sharding and the snapshot format are
/// both invisible to market semantics.
#[test]
fn materialized_snapshot_reopen_preserves_shard_equivalence() {
    let tmp = |name: &str| {
        let dir = std::env::temp_dir().join(format!("dmp-sheq-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let cmds = command_stream(5, 4242);

    let cfg4 = ServiceConfig::new(tmp("msnap-four"), market_config(4242))
        .with_shards(4)
        .with_snapshot_every(10)
        .with_keep_snapshots(1);
    let digest4 = {
        let node = ServiceNode::open(cfg4.clone()).unwrap();
        for cmd in &cmds {
            let _ = node.apply(cmd.clone());
        }
        node.state_digest()
    };
    // Reopen across the compacted journal: recovery must restore the
    // materialized snapshot and replay only the tail.
    let node4 = ServiceNode::open(cfg4.clone()).unwrap();
    assert_eq!(
        node4.state_digest(),
        digest4,
        "4-shard materialized-snapshot recovery diverged"
    );
    assert!(
        dmp_service::snapshot::load_latest(&cfg4.dir).is_some(),
        "run must have produced a materialized snapshot"
    );

    // And the recovered multi-shard node matches a pristine 1-shard
    // in-memory replay of the same stream.
    let (mono, _) = replay(&cmds, 4242, 1);
    assert_eq!(
        ledger_state(&mono),
        ledger_state(node4.router()),
        "1-shard vs snapshot-recovered 4-shard ledger diverged"
    );
    assert_eq!(
        trades(&mono),
        trades(node4.router()),
        "1-shard vs snapshot-recovered 4-shard trades diverged"
    );
    assert_eq!(
        offer_states(&mono),
        offer_states(node4.router()),
        "1-shard vs snapshot-recovered 4-shard offer lifecycle diverged"
    );
}

/// Node-level: the two-phase round is deterministic under journal
/// replay, and a 4-shard node's durable state matches the 1-shard
/// node's for the same command stream.
#[test]
fn node_recovery_preserves_cross_shard_equivalence() {
    let tmp = |name: &str| {
        let dir = std::env::temp_dir().join(format!("dmp-sheq-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let cmds = command_stream(4, 77);

    let apply_all = |node: &ServiceNode| {
        for cmd in &cmds {
            let _ = node.apply(cmd.clone());
        }
    };

    let cfg4 = ServiceConfig::new(tmp("four"), market_config(77))
        .with_shards(4)
        .with_snapshot_every(8);
    let digest4 = {
        let node = ServiceNode::open(cfg4.clone()).unwrap();
        apply_all(&node);
        node.state_digest()
    };
    // Reopen: snapshot + journal-tail replay must reproduce the state.
    let node4 = ServiceNode::open(cfg4).unwrap();
    assert_eq!(node4.state_digest(), digest4, "4-shard recovery diverged");

    let cfg1 = ServiceConfig::new(tmp("one"), market_config(77)).with_shards(1);
    let node1 = ServiceNode::open(cfg1).unwrap();
    apply_all(&node1);

    assert_eq!(
        node1.router().all_balances(),
        node4.router().all_balances(),
        "1-shard vs recovered 4-shard balances diverged"
    );
}
