//! End-to-end observability: boot a gateway on a real socket, drive
//! enrolls/deposits/rounds through it, then scrape `GET /metrics` and
//! assert the counters match the work actually done. Metrics are
//! process-global and cumulative, so every assertion is a
//! before/after **delta** — this binary stays valid no matter what
//! other tests in the same process record.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use dmp_core::market::MarketConfig;
use dmp_mechanism::design::MarketDesign;
use dmp_service::client::Client;
use dmp_service::gateway::{Gateway, GatewayConfig};
use dmp_service::node::{ServiceConfig, ServiceNode};
use dmp_service::wire::Json;
use dmp_telemetry::lint_exposition;

/// Serialize the tests in this binary: metrics are process-global, so
/// a round run by one test between another test's two scrapes would
/// break that test's exact-delta assertions.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmp-telemetry-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(name: &str) -> (Arc<ServiceNode>, Gateway) {
    let market = MarketConfig::external(9).with_design(MarketDesign::posted_price_baseline(20.0));
    let cfg = ServiceConfig::new(tmp_dir(name), market)
        .with_shards(2)
        .with_fsync(false);
    let node = Arc::new(ServiceNode::open(cfg).unwrap());
    let gateway = Gateway::serve(Arc::clone(&node), GatewayConfig::default()).unwrap();
    (node, gateway)
}

/// The value of one exposition series (exact full name incl. labels).
fn series(text: &str, name: &str) -> f64 {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            if let Some(v) = rest.strip_prefix(' ') {
                return v
                    .parse()
                    .unwrap_or_else(|_| panic!("bad value in {line:?}"));
            }
        }
    }
    0.0 // series not yet registered = zero observations
}

#[test]
fn metrics_scrape_matches_work_done() {
    let _serial = serial();
    let (_node, gateway) = start("scrape");
    let mut client = Client::connect(gateway.addr()).unwrap();

    let before = client.get_text("/metrics").unwrap();
    lint_exposition(&before).expect("exposition must lint clean before any work");

    // Drive real work: 3 enrolls (each with a deposit → 2 journaled
    // commands), 5 bare deposits, 2 rounds.
    for name in ["tele-a", "tele-b", "tele-c"] {
        let body = Json::parse(&format!(
            r#"{{"name":"{name}","role":"buyer","deposit":50.0}}"#
        ))
        .unwrap();
        client.post("/enroll", &body).unwrap();
    }
    for i in 0..5 {
        let body = Json::parse(&format!(r#"{{"account":"tele-a","amount":{}.0}}"#, i + 1)).unwrap();
        client.post("/deposits", &body).unwrap();
    }
    for _ in 0..2 {
        client.post("/rounds", &Json::Obj(Vec::new())).unwrap();
    }

    let after = client.get_text("/metrics").unwrap();
    lint_exposition(&after).expect("exposition must lint clean after work");

    let delta = |name: &str| series(&after, name) - series(&before, name);

    // Request counters, by endpoint.
    assert_eq!(
        delta("dmp_gateway_requests_total{endpoint=\"/enroll\"}"),
        3.0
    );
    assert_eq!(
        delta("dmp_gateway_requests_total{endpoint=\"/deposits\"}"),
        5.0
    );
    assert_eq!(
        delta("dmp_gateway_requests_total{endpoint=\"/rounds\"}"),
        2.0
    );
    // The `before` scrape itself was counted by the time `after`
    // renders; the `after` scrape may not be (it increments after
    // rendering). Either way at least one /metrics request landed.
    assert!(delta("dmp_gateway_requests_total{endpoint=\"/metrics\"}") >= 1.0);

    // Latency histograms agree with the counters.
    assert_eq!(
        delta("dmp_gateway_request_us_count{endpoint=\"/deposits\"}"),
        5.0
    );
    assert!(delta("dmp_gateway_request_us_sum{endpoint=\"/deposits\"}") > 0.0);

    // WAL accounting: 3 enrolls + 3 enrollment deposits + 5 deposits +
    // 2 run_round commands = 13 journal records.
    assert_eq!(delta("dmp_journal_appends_total"), 13.0);
    assert!(delta("dmp_journal_bytes_total") > 0.0);
    assert_eq!(delta("dmp_apply_us_count{kind=\"deposit\"}"), 8.0);
    assert_eq!(delta("dmp_apply_us_count{kind=\"run_round\"}"), 2.0);

    // Round pipeline: 2 cross-shard rounds, each timing all phases.
    assert_eq!(delta("dmp_rounds_total"), 2.0);
    assert_eq!(delta("dmp_round_phase_us_count{phase=\"candidates\"}"), 2.0);
    assert_eq!(delta("dmp_round_phase_us_count{phase=\"settlement\"}"), 2.0);
    // Core stage histograms recorded on every shard of every round.
    assert!(delta("dmp_round_stage_us_count{stage=\"candidates\"}") >= 2.0);

    // Connection accounting: this client dialed before the first
    // scrape, so the *cumulative* count is at least one (the delta
    // between scrapes on one keep-alive socket is legitimately zero).
    assert!(series(&after, "dmp_gateway_accepts_total") >= 1.0);

    gateway.shutdown();
}

#[test]
fn health_reports_rounds_and_uptime() {
    let _serial = serial();
    let (_node, gateway) = start("health");
    let mut client = Client::connect(gateway.addr()).unwrap();

    client.post("/rounds", &Json::Obj(Vec::new())).unwrap();
    let health = client.get("/health").unwrap();
    assert_eq!(
        health.get("rounds_completed").and_then(Json::as_u64),
        Some(1)
    );
    let uptime = health
        .get("uptime_s")
        .and_then(Json::as_f64)
        .expect("health carries uptime_s");
    assert!((0.0..3600.0).contains(&uptime), "uptime_s={uptime}");

    gateway.shutdown();
}

#[test]
fn trace_endpoint_returns_span_ring() {
    let _serial = serial();
    let (_node, gateway) = start("trace");
    let mut client = Client::connect(gateway.addr()).unwrap();

    // Pool-handled requests open tracer spans.
    let body = Json::parse(r#"{"name":"tracer-x","role":"buyer"}"#).unwrap();
    client.post("/enroll", &body).unwrap();

    let trace = client.get("/trace").unwrap();
    assert!(
        trace.get("dropped").and_then(Json::as_u64).is_some(),
        "trace body carries the drop counter: {}",
        trace.dump()
    );
    let spans = trace.get("spans").expect("trace body has spans");
    // The enroll span may or may not still be in the ring alongside
    // spans from other tests' work, but the field must be an array.
    assert!(matches!(spans, Json::Arr(_)), "{}", trace.dump());

    gateway.shutdown();
}
