//! Property tests for the wire codec: `parse ∘ dump` is the identity
//! on arbitrary JSON values, and every [`Command`] round-trips through
//! its wire form unchanged.

use dmp_service::command::{
    AskSpec, CellSpec, ColType, Command, CurveSpec, LicenseSpec, OfferSpec, TableSpec, TaskSpec,
};
use dmp_service::wire::Json;
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use rand::Rng;

/// Arbitrary JSON trees, bounded in depth and width.
struct ArbJson {
    max_depth: u32,
}

fn arb_string(rng: &mut TestRng) -> String {
    // Bias toward characters that stress the escaper: quotes,
    // backslashes, control characters, multi-byte UTF-8.
    const POOL: &[char] = &[
        'a',
        'b',
        'z',
        'A',
        '0',
        '9',
        ' ',
        '_',
        '-',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{0001}',
        '\u{001f}',
        'é',
        'π',
        '→',
        '\u{1F600}',
        '\u{FFFD}',
    ];
    let len = rng.gen_range(0usize..12);
    (0..len)
        .map(|_| POOL[rng.gen_range(0usize..POOL.len())])
        .collect()
}

fn arb_number(rng: &mut TestRng) -> f64 {
    match rng.gen_range(0u32..5) {
        0 => 0.0,
        1 => rng.gen_range(-1_000_000i64..1_000_000) as f64,
        2 => rng.gen_range(-1e9f64..1e9),
        3 => rng.gen_range(-1.0f64..1.0) * 1e-9,
        _ => rng.gen_range(-1.0f64..1.0) * 1e18,
    }
}

fn arb_json(rng: &mut TestRng, depth: u32) -> Json {
    let leaf_only = depth == 0;
    match rng.gen_range(0u32..if leaf_only { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen::<bool>()),
        2 => Json::Num(arb_number(rng)),
        3 => Json::Str(arb_string(rng)),
        4 => {
            let len = rng.gen_range(0usize..4);
            Json::Arr((0..len).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0usize..4);
            Json::Obj(
                (0..len)
                    .map(|_| (arb_string(rng), arb_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

impl Strategy for ArbJson {
    type Value = Json;
    fn generate(&self, rng: &mut TestRng) -> Json {
        arb_json(rng, self.max_depth)
    }
}

/// Arbitrary commands covering every variant and spec shape.
struct ArbCommand;

fn arb_name(rng: &mut TestRng) -> String {
    let len = rng.gen_range(1usize..10);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
        .collect()
}

fn arb_curve(rng: &mut TestRng) -> CurveSpec {
    match rng.gen_range(0u32..3) {
        0 => CurveSpec::Constant(rng.gen_range(0.0f64..500.0)),
        1 => CurveSpec::Linear {
            min_satisfaction: rng.gen_range(0.0f64..1.0),
            max_price: rng.gen_range(0.0f64..500.0),
        },
        _ => {
            let steps = rng.gen_range(1usize..4);
            CurveSpec::Step(
                (0..steps)
                    .map(|_| (rng.gen_range(0.0f64..1.0), rng.gen_range(0.0f64..500.0)))
                    .collect(),
            )
        }
    }
}

fn arb_task(rng: &mut TestRng) -> TaskSpec {
    match rng.gen_range(0u32..4) {
        0 => TaskSpec::AttributeCoverage,
        1 => TaskSpec::Classification {
            label: arb_name(rng),
        },
        2 => TaskSpec::Regression {
            target: arb_name(rng),
        },
        _ => TaskSpec::AggregateCompleteness {
            group_by: arb_name(rng),
            expected_groups: rng.gen_range(1u64..100),
        },
    }
}

fn arb_license(rng: &mut TestRng) -> LicenseSpec {
    match rng.gen_range(0u32..4) {
        0 => LicenseSpec::Standard,
        1 => LicenseSpec::Exclusive {
            tax_rate: rng.gen_range(0.0f64..2.0),
            hold_rounds: rng.gen_range(0u32..10),
        },
        2 => LicenseSpec::OwnershipTransfer,
        _ => LicenseSpec::NonTransferable,
    }
}

fn arb_table(rng: &mut TestRng) -> TableSpec {
    const TYPES: &[ColType] = &[
        ColType::Int,
        ColType::Float,
        ColType::Str,
        ColType::Bool,
        ColType::Timestamp,
    ];
    let cols = rng.gen_range(1usize..4);
    let columns: Vec<(String, ColType)> = (0..cols)
        .map(|i| {
            (
                format!("c{i}_{}", arb_name(rng)),
                TYPES[rng.gen_range(0usize..TYPES.len())],
            )
        })
        .collect();
    let rows = rng.gen_range(0usize..4);
    let rows = (0..rows)
        .map(|_| {
            columns
                .iter()
                .map(|(_, ty)| {
                    if rng.gen_bool(0.2) {
                        return CellSpec::Null;
                    }
                    match ty {
                        ColType::Int | ColType::Timestamp => {
                            CellSpec::Int(rng.gen_range(-1_000_000i64..1_000_000))
                        }
                        ColType::Float => CellSpec::Float(rng.gen_range(-1e6f64..1e6)),
                        ColType::Str => CellSpec::Str(arb_string(rng)),
                        ColType::Bool => CellSpec::Bool(rng.gen::<bool>()),
                    }
                })
                .collect()
        })
        .collect();
    TableSpec {
        name: arb_name(rng),
        columns,
        rows,
    }
}

fn arb_command(rng: &mut TestRng) -> Command {
    match rng.gen_range(0u32..6) {
        0 => Command::Enroll {
            name: arb_name(rng),
            role: arb_name(rng),
        },
        1 => Command::Deposit {
            account: arb_name(rng),
            amount: rng.gen_range(0.0f64..1e6),
        },
        2 => Command::SubmitOffer(OfferSpec {
            buyer: arb_name(rng),
            attributes: (0..rng.gen_range(1usize..4))
                .map(|_| arb_name(rng))
                .collect(),
            keywords: (0..rng.gen_range(0usize..3))
                .map(|_| arb_name(rng))
                .collect(),
            task: arb_task(rng),
            curve: arb_curve(rng),
            min_rows: rng.gen_range(1u64..50),
            purpose: arb_name(rng),
        }),
        3 => Command::SubmitAsk(AskSpec {
            seller: arb_name(rng),
            table: arb_table(rng),
            reserve: if rng.gen::<bool>() {
                Some(rng.gen_range(0.0f64..100.0))
            } else {
                None
            },
            license: if rng.gen::<bool>() {
                Some(arb_license(rng))
            } else {
                None
            },
        }),
        4 => Command::GrantLicense {
            seller: arb_name(rng),
            dataset: rng.gen_range(0u64..1000),
            license: arb_license(rng),
        },
        _ => Command::RunRound {
            rounds: rng.gen_range(1u64..8) as u32,
        },
    }
}

impl Strategy for ArbCommand {
    type Value = Command;
    fn generate(&self, rng: &mut TestRng) -> Command {
        arb_command(rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_dump_parse_round_trips(value in ArbJson { max_depth: 4 }) {
        let text = value.dump();
        let back = Json::parse(&text)
            .unwrap_or_else(|e| panic!("dump produced unparseable JSON {text:?}: {e}"));
        prop_assert_eq!(back, value);
    }

    #[test]
    fn json_round_trip_is_stable(value in ArbJson { max_depth: 3 }) {
        // dump ∘ parse ∘ dump == dump (canonical form is a fixpoint).
        let once = value.dump();
        let twice = Json::parse(&once).unwrap().dump();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn commands_round_trip_through_wire(cmd in ArbCommand) {
        let encoded = cmd.encode().dump();
        let json = Json::parse(&encoded)
            .unwrap_or_else(|e| panic!("command encoded to bad JSON {encoded:?}: {e}"));
        let decoded = Command::decode(&json)
            .unwrap_or_else(|e| panic!("decode failed for {encoded:?}: {e}"));
        prop_assert_eq!(decoded, cmd);
    }
}
