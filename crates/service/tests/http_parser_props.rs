//! Property tests pinning the resumable [`RequestParser`] to the
//! one-shot [`read_request`] oracle.
//!
//! The evented gateway never sees a request in one piece: the kernel
//! hands it whatever bytes happen to be in the socket buffer, cut at
//! arbitrary boundaries (TCP segmentation, slow peers, pipelining).
//! These properties assert that **no cut changes the parse**: feeding
//! any chunking of a request stream — down to one byte at a time —
//! yields exactly the requests the blocking parser reads from the same
//! bytes, and pipelined requests always surface in wire order.

use std::io::Cursor;

use dmp_service::http::{read_request, HttpError, Request, RequestParser};
use proptest::prelude::*;

const MAX_BODY: usize = 1 << 20;

/// Strategy for one request's wire-relevant parts:
/// `(is_post, path, extra_header_name, extra_header_value, body)`.
fn arb_request() -> impl Strategy<Value = (bool, String, String, String, Vec<u8>)> {
    (
        proptest::bool::ANY,
        "/[a-z0-9_/]{0,20}",
        "[a-z]{1,10}",
        "[ -~]{0,24}",
        proptest::collection::vec(0u8..=255u8, 0..128),
    )
}

/// Serialize a generated request the way a client would put it on the
/// wire (POSTs carry the body, GETs drop it).
fn encode(req: &(bool, String, String, String, Vec<u8>)) -> Vec<u8> {
    let (is_post, path, hname, hval, body) = req;
    let method = if *is_post { "POST" } else { "GET" };
    let body: &[u8] = if *is_post { body } else { &[] };
    let mut wire = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\nx-{hname}: {hval}\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    wire.extend_from_slice(body);
    wire
}

/// The blocking oracle: drain every request out of `wire`.
fn oracle(wire: &[u8]) -> Vec<Request> {
    let mut cursor = Cursor::new(wire);
    let mut out = Vec::new();
    loop {
        match read_request(&mut cursor, MAX_BODY) {
            Ok(req) => out.push(req),
            Err(HttpError::Eof) => return out,
            Err(e) => panic!("oracle rejected its own wire bytes: {e:?}"),
        }
    }
}

/// Drain every complete request currently inside `parser`.
fn drain(parser: &mut RequestParser) -> Vec<Request> {
    let mut out = Vec::new();
    while let Some(req) = parser.next(MAX_BODY).expect("incremental parse failed") {
        out.push(req);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any chunking of a request stream parses identically to the
    /// one-shot oracle — including chunk boundaries inside the request
    /// line, inside a header name, between `\r` and `\n`, and mid-body.
    #[test]
    fn chunked_parse_matches_one_shot(
        reqs in proptest::collection::vec(arb_request(), 1..5),
        chunk_sizes in proptest::collection::vec(1usize..9, 1..12),
    ) {
        let wire: Vec<u8> = reqs.iter().flat_map(encode).collect();
        let expected = oracle(&wire);

        let mut parser = RequestParser::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut k = 0;
        while pos < wire.len() {
            let n = chunk_sizes[k % chunk_sizes.len()].min(wire.len() - pos);
            k += 1;
            parser.feed(&wire[pos..pos + n]);
            pos += n;
            // Draining between feeds must not disturb later requests.
            got.extend(drain(&mut parser));
        }
        got.extend(drain(&mut parser));

        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(parser.buffered(), 0, "no bytes may linger after a complete stream");
    }

    /// One byte at a time is the pathological chunking; it must agree
    /// with feeding the entire pipelined buffer at once, and both must
    /// preserve wire order.
    #[test]
    fn byte_at_a_time_matches_whole_buffer(
        reqs in proptest::collection::vec(arb_request(), 1..4),
    ) {
        let wire: Vec<u8> = reqs.iter().flat_map(encode).collect();

        let mut whole = RequestParser::new();
        whole.feed(&wire);
        let all_at_once = drain(&mut whole);

        let mut trickle = RequestParser::new();
        let mut dribbled = Vec::new();
        for b in &wire {
            trickle.feed(std::slice::from_ref(b));
            dribbled.extend(drain(&mut trickle));
        }

        prop_assert_eq!(&dribbled, &all_at_once);
        // Wire order: request i of the batch surfaces as parse i.
        prop_assert_eq!(all_at_once.len(), reqs.len());
        for (parsed, generated) in all_at_once.iter().zip(&reqs) {
            prop_assert_eq!(&parsed.path, &generated.1);
        }
    }
}
