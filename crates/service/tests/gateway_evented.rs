//! Regression tests for the evented gateway's connection handling:
//! slow-loris resistance (idle sockets cannot starve healthy ones and
//! are reaped by the idle timeout), HTTP/1.1 pipelining over a real
//! socket with strictly ordered responses, and the client helper's
//! transparent reconnection after a server-initiated close.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dmp_core::market::MarketConfig;
use dmp_mechanism::design::MarketDesign;
use dmp_service::client::{Client, PipelinedRequest};
use dmp_service::gateway::{Gateway, GatewayConfig};
use dmp_service::node::{ServiceConfig, ServiceNode};
use dmp_service::wire::Json;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmp-evented-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(name: &str, cfg: GatewayConfig) -> (Arc<ServiceNode>, Gateway) {
    let market = MarketConfig::external(9).with_design(MarketDesign::posted_price_baseline(20.0));
    let service = ServiceConfig::new(tmp_dir(name), market)
        .with_shards(2)
        .with_fsync(false);
    let node = Arc::new(ServiceNode::open(service).unwrap());
    let gateway = Gateway::serve(Arc::clone(&node), cfg).unwrap();
    (node, gateway)
}

/// 64 slow-loris connections — opened, trickling at most a partial
/// request line, never completing — must not block a healthy client,
/// and the idle timeout must reap them. The old thread-per-connection
/// gateway died here: every loris pinned a thread.
#[test]
fn slow_loris_does_not_starve_healthy_clients() {
    let cfg = GatewayConfig {
        read_timeout: Duration::from_millis(400),
        ..GatewayConfig::default()
    };
    let (_node, gateway) = start("loris", cfg);

    // Open 64 connections that send a few bytes of a request line and
    // then stall forever (the classic slow-loris shape).
    let mut lorises: Vec<TcpStream> = (0..64)
        .map(|_| {
            let mut s = TcpStream::connect(gateway.addr()).unwrap();
            s.write_all(b"GET /hea").unwrap();
            s
        })
        .collect();

    // A healthy client must get served promptly while all 64 stall.
    let started = Instant::now();
    let mut healthy = Client::connect(gateway.addr()).unwrap();
    for _ in 0..20 {
        let health = healthy.get("/health").unwrap();
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "healthy client starved behind idle connections ({:?})",
        started.elapsed()
    );

    // The timer wheel must reap every loris: a read on each socket
    // eventually reports EOF (or a reset), not an eternal hang.
    let deadline = Instant::now() + Duration::from_secs(10);
    for loris in &mut lorises {
        let remaining = deadline.saturating_duration_since(Instant::now());
        assert!(
            !remaining.is_zero(),
            "gateway never closed idle connections"
        );
        loris.set_read_timeout(Some(remaining)).unwrap();
        let mut buf = [0u8; 64];
        match loris.read(&mut buf) {
            Ok(0) => {} // clean close
            Ok(_) => panic!("gateway answered a half-sent request"),
            Err(e) if e.kind() == ErrorKind::ConnectionReset => {} // RST also fine
            Err(e) => panic!("expected idle close, got {e}"),
        }
    }
}

/// Pipelined requests on one connection come back in request order,
/// and the batch helper agrees with issuing them one at a time.
#[test]
fn pipelined_requests_answered_in_order() {
    let (_node, gateway) = start("pipeline", GatewayConfig::default());
    let mut c = Client::connect(gateway.addr()).unwrap();

    // Mix inline-served GETs with pool-served POSTs: ordering must hold
    // even though they complete on different threads.
    let mut batch = Vec::new();
    for i in 0..10 {
        batch.push(PipelinedRequest::post(
            "/enroll",
            Json::parse(&format!(r#"{{"name":"buyer-{i}","role":"buyer"}}"#)).unwrap(),
        ));
        batch.push(PipelinedRequest::get("/health"));
        batch.push(PipelinedRequest::post(
            "/deposits",
            Json::parse(&format!(r#"{{"account":"buyer-{i}","amount":{}}}"#, 10 + i)).unwrap(),
        ));
        batch.push(PipelinedRequest::get(format!("/ledger/buyer-{i}")));
    }
    let responses = c.pipeline(&batch).unwrap();
    assert_eq!(responses.len(), batch.len());

    for (i, chunk) in responses.chunks(4).enumerate() {
        let (enroll_status, _) = &chunk[0];
        assert_eq!(*enroll_status, 200, "enroll {i}");
        let (health_status, health) = &chunk[1];
        assert_eq!(*health_status, 200);
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        let (deposit_status, _) = &chunk[2];
        assert_eq!(*deposit_status, 200, "deposit {i}");
        // The account read is the order proof: it must see exactly the
        // deposit pipelined right before it, for *its* buyer.
        let (acct_status, acct) = &chunk[3];
        assert_eq!(*acct_status, 200);
        assert_eq!(
            acct.get("balance").and_then(Json::as_f64),
            Some(10.0 + i as f64),
            "pipelined response {i} out of order"
        );
    }
}

/// A parse error mid-pipeline answers the bad request and closes, and
/// the client helper resends the tail on a fresh connection.
#[test]
fn malformed_request_closes_but_client_recovers() {
    let (_node, gateway) = start("malformed", GatewayConfig::default());

    // Raw socket: two pipelined requests where the first is malformed.
    // The gateway must answer 400 with `Connection: close` and never
    // touch the second request.
    let mut raw = TcpStream::connect(gateway.addr()).unwrap();
    raw.write_all(b"BOGUS\r\n\r\nGET /health HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n")
        .unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut text = String::new();
    raw.read_to_string(&mut text).unwrap(); // returns once the server closes
    assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
    assert!(
        text.to_ascii_lowercase().contains("connection: close"),
        "a fatal parse error must advertise the close: {text}"
    );
    assert_eq!(
        text.matches("HTTP/1.1").count(),
        1,
        "second request must not be answered"
    );

    // The keep-alive client shrugs off a server-side close between
    // requests: `Connection: close` drops the socket, the next request
    // transparently re-dials.
    let mut c = Client::connect(gateway.addr()).unwrap();
    let (status, _) = c.request("POST", "/enroll", None).unwrap();
    assert_eq!(status, 400, "missing body is a client error");
    let health = c.get("/health").unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
}

/// Keep-alive sockets reaped by the idle timeout are re-dialed
/// transparently: a client that sits idle past the timeout still
/// completes its next request instead of surfacing a broken pipe.
#[test]
fn client_survives_idle_timeout_reaping() {
    let cfg = GatewayConfig {
        read_timeout: Duration::from_millis(200),
        ..GatewayConfig::default()
    };
    let (_node, gateway) = start("reap", cfg);

    let mut c = Client::connect(gateway.addr()).unwrap();
    assert_eq!(
        c.get("/health")
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("ok")
    );
    // Outlive the idle timeout; the server closes our socket.
    std::thread::sleep(Duration::from_millis(700));
    assert_eq!(
        c.get("/health")
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("ok"),
        "client must reconnect after the gateway reaped its idle socket"
    );
}
