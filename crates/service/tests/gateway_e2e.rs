//! End-to-end over a real socket: a gateway on an ephemeral port,
//! driven by concurrent HTTP clients through the full
//! enroll → deposit → ask → offer → round → ledger-read flow, plus
//! durability across a gateway restart.

use std::path::PathBuf;
use std::sync::Arc;

use dmp_core::market::MarketConfig;
use dmp_mechanism::design::MarketDesign;
use dmp_service::client::Client;
use dmp_service::gateway::{Gateway, GatewayConfig};
use dmp_service::node::{ServiceConfig, ServiceNode};
use dmp_service::wire::Json;

/// A seller name that hashes onto the same shard as `buyer` (offers
/// only match datasets within their own shard; cross-shard trades are
/// a ROADMAP follow-on).
fn co_located_seller(buyer: &str, base: &str, shards: u64) -> String {
    let target = dmp_service::shard::fnv1a(buyer.as_bytes()) % shards;
    (0..)
        .map(|j| format!("{base}{j}"))
        .find(|name| dmp_service::shard::fnv1a(name.as_bytes()) % shards == target)
        .unwrap()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmp-gateway-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(name: &str) -> (Arc<ServiceNode>, Gateway) {
    let market = MarketConfig::external(9).with_design(MarketDesign::posted_price_baseline(20.0));
    let cfg = ServiceConfig::new(tmp_dir(name), market)
        .with_shards(2)
        .with_fsync(false);
    let node = Arc::new(ServiceNode::open(cfg).unwrap());
    let gateway = Gateway::serve(Arc::clone(&node), GatewayConfig::default()).unwrap();
    (node, gateway)
}

fn ask_body(seller: &str, table_name: &str) -> Json {
    Json::parse(&format!(
        r#"{{"seller":"{seller}","table":{{"name":"{table_name}",
            "columns":[["city","str"],["temp","float"]],
            "rows":[["chicago",3.5],["boston",1.0],["austin",21.0]]}},
            "reserve":1.0}}"#
    ))
    .unwrap()
}

fn offer_body(buyer: &str, price: f64) -> Json {
    Json::parse(&format!(
        r#"{{"buyer":"{buyer}","attributes":["city","temp"],
            "curve":{{"kind":"constant","price":{price}}}}}"#
    ))
    .unwrap()
}

#[test]
fn full_market_session_over_the_wire() {
    let (_node, gateway) = start("session");
    let mut c = Client::connect(gateway.addr()).unwrap();

    let health = c.get("/health").unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    let seller = co_located_seller("analytics-inc", "weather-co", 2);
    c.post(
        "/enroll",
        &Json::obj([
            ("name", Json::str(seller.clone())),
            ("role", Json::str("seller")),
        ]),
    )
    .unwrap();
    c.post(
        "/enroll",
        &Json::parse(r#"{"name":"analytics-inc","role":"buyer","deposit":100}"#).unwrap(),
    )
    .unwrap();
    let ask = c.post("/asks", &ask_body(&seller, "city_temps")).unwrap();
    assert!(ask.get("dataset").is_some());
    let offer = c
        .post("/offers", &offer_body("analytics-inc", 30.0))
        .unwrap();
    assert!(offer.get("offer").is_some());

    let rounds = c
        .post("/rounds", &Json::parse(r#"{"rounds":1}"#).unwrap())
        .unwrap();
    let round = &rounds.req_arr("rounds").unwrap()[0];
    assert_eq!(round.get("sales").and_then(Json::as_u64), Some(1));
    assert!(round.req_f64("revenue").unwrap() > 0.0);

    // The buyer paid; the seller earned.
    let buyer = c.get("/ledger/analytics-inc").unwrap();
    assert!(buyer.req_f64("balance").unwrap() < 100.0);
    let seller_ledger = c.get(&format!("/ledger/{seller}")).unwrap();
    assert!(seller_ledger.req_f64("balance").unwrap() > 0.0);

    // Error paths over the wire.
    let (status, _) = c.request("GET", "/ledger/nobody", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = c.request("GET", "/no-such-route", None).unwrap();
    assert_eq!(status, 404);
    let (status, body) = c
        .request(
            "POST",
            "/offers",
            Some(
                &Json::parse(
                    r#"{"buyer":"ghost","attributes":["x"],"curve":{"kind":"constant","price":1}}"#,
                )
                .unwrap(),
            ),
        )
        .unwrap();
    assert_eq!(
        status,
        400,
        "offer from unknown buyer rejected: {}",
        body.dump()
    );
    let (status, _) = c.request("POST", "/offers", Some(&Json::Null)).unwrap();
    assert_eq!(status, 400);

    gateway.shutdown();
}

#[test]
fn concurrent_clients_drive_disjoint_sessions() {
    // ≥ 4 concurrent clients over real sockets, each with its own
    // seller + buyer pair, then one round and ledger reads.
    const CLIENTS: usize = 6;
    let (node, gateway) = start("concurrent");
    let addr = gateway.addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let buyer = format!("buyer{i}");
                let seller = co_located_seller(&buyer, &format!("seller{i}_"), 2);
                c.post(
                    "/enroll",
                    &Json::obj([
                        ("name", Json::str(seller.clone())),
                        ("role", Json::str("seller")),
                    ]),
                )
                .unwrap();
                c.post(
                    "/enroll",
                    &Json::obj([
                        ("name", Json::str(buyer.clone())),
                        ("role", Json::str("buyer")),
                        ("deposit", Json::Num(200.0)),
                    ]),
                )
                .unwrap();
                c.post("/asks", &ask_body(&seller, &format!("t{i}")))
                    .unwrap();
                let offer = c.post("/offers", &offer_body(&buyer, 30.0)).unwrap();
                offer.req_u64("offer").unwrap()
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Every mutation above was journaled exactly once: per client, two
    // enrolls, the enrollment deposit, one ask, one offer.
    assert_eq!(node.applied(), (CLIENTS * 5) as u64);

    let mut c = Client::connect(addr).unwrap();
    c.post("/rounds", &Json::parse(r#"{"rounds":1}"#).unwrap())
        .unwrap();

    // Concurrent ledger reads: each buyer paid for its mashup.
    let read_handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let body = c.get(&format!("/ledger/buyer{i}")).unwrap();
                body.req_f64("balance").unwrap()
            })
        })
        .collect();
    for h in read_handles {
        let balance = h.join().unwrap();
        assert!(
            balance < 200.0,
            "each buyer's round purchase must show in its balance"
        );
    }

    gateway.shutdown();
}

#[test]
fn state_survives_gateway_restart() {
    let market = MarketConfig::external(9).with_design(MarketDesign::posted_price_baseline(20.0));
    let dir = tmp_dir("restart");
    let cfg = ServiceConfig::new(&dir, market)
        .with_shards(2)
        .with_fsync(false);

    let digest = {
        let node = Arc::new(ServiceNode::open(cfg.clone()).unwrap());
        let gateway = Gateway::serve(Arc::clone(&node), GatewayConfig::default()).unwrap();
        let mut c = Client::connect(gateway.addr()).unwrap();
        c.post(
            "/enroll",
            &Json::parse(r#"{"name":"s","role":"seller"}"#).unwrap(),
        )
        .unwrap();
        c.post(
            "/enroll",
            &Json::parse(r#"{"name":"b","role":"buyer","deposit":50}"#).unwrap(),
        )
        .unwrap();
        c.post("/asks", &ask_body("s", "t")).unwrap();
        c.post("/offers", &offer_body("b", 8.0)).unwrap();
        c.post("/rounds", &Json::parse(r#"{"rounds":2}"#).unwrap())
            .unwrap();
        c.post("/snapshot", &Json::Obj(Vec::new())).unwrap();
        gateway.shutdown();
        node.state_digest()
    };

    // A brand-new process (node + gateway) over the same directory.
    let node = Arc::new(ServiceNode::open(cfg).unwrap());
    assert_eq!(node.state_digest(), digest);
    let gateway = Gateway::serve(Arc::clone(&node), GatewayConfig::default()).unwrap();
    let mut c = Client::connect(gateway.addr()).unwrap();
    let health = c.get("/health").unwrap();
    assert_eq!(health.req_u64("applied").unwrap(), node.applied());
    let ledger = c.get("/ledger").unwrap();
    assert!(ledger.get("balances").is_some());
    gateway.shutdown();
}
