//! Distributed-exchange e2e: a coordinator [`ServiceNode`] farming
//! rounds out to real `dmp-worker` **processes over real sockets**,
//! pinned bit-identical to single-process deployments.
//!
//! What is pinned:
//!
//! * distributed (1 coordinator + N workers) == single-process M-shard
//!   == 1-shard: ledgers and trades bit-for-bit, report totals at
//!   ledger granularity — including through the public HTTP gateway;
//! * every worker stays a bit-exact replica (state digest RPC);
//! * a worker killed mid-round at each phase boundary (pre-candidate,
//!   pre-settle, mid-settle) costs nothing: the coordinator
//!   re-dispatches and the final state is bit-identical to the
//!   no-failure run;
//! * a misconfigured worker (different seed ⇒ different fingerprint)
//!   is refused over the wire, never silently diverges;
//! * worker and coordinator `/metrics` expositions lint clean and
//!   carry the distributed series.

use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Stdio};
use std::sync::Arc;

use dmp_core::market::MarketConfig;
use dmp_mechanism::design::MarketDesign;
use dmp_service::client::Client;
use dmp_service::command::{
    AskSpec, CellSpec, ColType, Command, CurveSpec, LicenseSpec, OfferSpec, TableSpec, TaskSpec,
};
use dmp_service::coordinator::WorkerPool;
use dmp_service::gateway::{Gateway, GatewayConfig};
use dmp_service::metrics::metrics;
use dmp_service::node::{ServiceConfig, ServiceNode};
use dmp_service::shard::{MergedRoundReport, Outcome, ShardRouter};
use dmp_service::wire::Json;
use dmp_telemetry::lint_exposition;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

const POSTED_PRICE: f64 = 12.0;

fn market_config(seed: u64) -> MarketConfig {
    MarketConfig::external(seed).with_design(MarketDesign::posted_price_baseline(POSTED_PRICE))
}

fn temp_dir(name: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dmp-dist-{name}-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A live `dmp-worker` process; killed on drop.
struct WorkerProc {
    child: Child,
    addr: SocketAddr,
}

impl WorkerProc {
    fn spawn(seed: u64, shards: usize, kill: Option<(&str, u64)>) -> WorkerProc {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_dmp-worker"));
        cmd.arg("--shards")
            .arg(shards.to_string())
            .arg("--seed")
            .arg(seed.to_string())
            .arg("--posted-price")
            .arg(POSTED_PRICE.to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some((phase, round)) = kill {
            cmd.arg("--kill-phase")
                .arg(phase)
                .arg("--kill-round")
                .arg(round.to_string());
        }
        let mut child = cmd.spawn().expect("spawn dmp-worker");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read bound address");
        let addr: SocketAddr = line
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("dmp-worker printed '{line}' instead of its bound address"));
        WorkerProc { child, addr }
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A deterministic stream of mixed commands — the same shape the
/// shard-equivalence suite uses: enrolls, deposits, asks over a small
/// shared attribute pool, offers, occasional licenses, and rounds.
fn command_stream(rounds: usize, seed: u64) -> Vec<Command> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cmds = Vec::new();
    let attrs = ["a", "b", "c", "d"];
    for i in 0..5 {
        cmds.push(Command::Enroll {
            name: format!("seller{i}"),
            role: "seller".into(),
        });
        cmds.push(Command::Enroll {
            name: format!("buyer{i}"),
            role: "buyer".into(),
        });
        cmds.push(Command::Deposit {
            account: format!("buyer{i}"),
            amount: 200.0 + i as f64,
        });
    }
    let mut datasets_shared = 0u64;
    for round in 0..rounds {
        for _ in 0..rng.gen_range(1..4) {
            match rng.gen_range(0..10) {
                0..=3 => {
                    let start = rng.gen_range(0..attrs.len() - 1);
                    let width = rng.gen_range(1..=attrs.len() - start);
                    let cols: Vec<(String, ColType)> = attrs[start..start + width]
                        .iter()
                        .map(|c| (c.to_string(), ColType::Float))
                        .collect();
                    let rows = (0..rng.gen_range(2..6))
                        .map(|_| {
                            cols.iter()
                                .map(|_| CellSpec::Float(rng.gen_range(0i64..500) as f64 / 10.0))
                                .collect()
                        })
                        .collect();
                    cmds.push(Command::SubmitAsk(AskSpec {
                        seller: format!("seller{}", rng.gen_range(0..5)),
                        table: TableSpec {
                            name: format!("t{round}_{}", cmds.len()),
                            columns: cols,
                            rows,
                        },
                        reserve: if rng.gen_bool(0.3) {
                            Some(rng.gen_range(0i64..8) as f64)
                        } else {
                            None
                        },
                        license: if rng.gen_bool(0.2) {
                            Some(LicenseSpec::Exclusive {
                                tax_rate: 0.25,
                                hold_rounds: 2,
                            })
                        } else {
                            None
                        },
                    }));
                    datasets_shared += 1;
                }
                4..=7 => {
                    let start = rng.gen_range(0..attrs.len() - 1);
                    let width = rng.gen_range(1..=attrs.len() - start);
                    cmds.push(Command::SubmitOffer(OfferSpec {
                        buyer: format!("buyer{}", rng.gen_range(0..5)),
                        attributes: attrs[start..start + width]
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                        keywords: Vec::new(),
                        task: TaskSpec::AttributeCoverage,
                        curve: CurveSpec::Constant(rng.gen_range(10i64..40) as f64),
                        min_rows: 1,
                        purpose: "analytics".into(),
                    }));
                }
                8 if datasets_shared > 0 => {
                    cmds.push(Command::GrantLicense {
                        seller: format!("seller{}", rng.gen_range(0..5)),
                        dataset: rng.gen_range(0..datasets_shared),
                        license: LicenseSpec::Standard,
                    });
                }
                _ => {
                    cmds.push(Command::Deposit {
                        account: format!("buyer{}", rng.gen_range(0..5)),
                        amount: rng.gen_range(1i64..50) as f64,
                    });
                }
            }
        }
        cmds.push(Command::RunRound { rounds: 1 });
    }
    cmds
}

/// All settled trades, shard-count-independently keyed and bit-exact.
fn trades(router: &ShardRouter) -> Vec<(u64, u64, String, u64, u64)> {
    let mut out: Vec<_> = router
        .shards()
        .iter()
        .flat_map(|m| m.transactions())
        .map(|t| {
            (
                t.round,
                t.offer_id,
                t.buyer.clone(),
                t.price.to_bits(),
                t.fee.to_bits(),
            )
        })
        .collect();
    out.sort();
    out
}

/// Ledger balances, bit-exact.
fn balances(router: &ShardRouter) -> Vec<(String, u64)> {
    router
        .all_balances()
        .into_iter()
        .map(|(name, bal)| (name, bal.to_bits()))
        .collect()
}

/// Round-report totals at micro-credit precision, conflict components
/// included.
fn report_totals(r: &MergedRoundReport) -> (u64, usize, usize, i64, i64, usize, usize, usize) {
    let micros = |x: f64| (x * 1e6).round() as i64;
    (
        r.round,
        r.considered,
        r.sales,
        micros(r.revenue),
        micros(r.fees),
        r.expired,
        r.deliveries,
        r.components,
    )
}

/// In-memory local replay (the single-process reference).
fn replay_local(
    cmds: &[Command],
    seed: u64,
    shards: usize,
) -> (ShardRouter, Vec<MergedRoundReport>) {
    let router = ShardRouter::new(&market_config(seed), shards);
    let mut reports = Vec::new();
    for cmd in cmds {
        if let Ok(Outcome::RoundsRun(mut r)) = router.apply(cmd) {
            reports.append(&mut r);
        }
    }
    (router, reports)
}

/// Boot a coordinator over the given workers, replay the stream, and
/// return everything needed for equivalence assertions.
fn replay_distributed(
    name: &str,
    cmds: &[Command],
    seed: u64,
    shards: usize,
    workers: &[WorkerProc],
) -> (Arc<ServiceNode>, Arc<WorkerPool>, Vec<MergedRoundReport>) {
    let cfg = ServiceConfig::new(temp_dir(name, seed), market_config(seed)).with_shards(shards);
    let node = Arc::new(ServiceNode::open(cfg).expect("coordinator opens"));
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.addr).collect();
    let pool =
        Arc::new(WorkerPool::connect(node.fingerprint(), shards, &addrs).expect("pool connects"));
    assert_eq!(
        pool.provision_all(&node),
        workers.len(),
        "every worker must provision"
    );
    WorkerPool::attach(&pool, &node);
    let mut reports = Vec::new();
    for cmd in cmds {
        if let Ok(Outcome::RoundsRun(mut r)) = node.apply(cmd.clone()) {
            reports.append(&mut r);
        }
    }
    (node, pool, reports)
}

fn digest_of(addr: SocketAddr) -> (String, String) {
    let mut client = Client::connect(addr).expect("worker reachable");
    let j = client.get("/internal/digest").expect("digest rpc");
    (
        j.req_str("digest").expect("digest field"),
        j.req_str("rounds").expect("rounds field"),
    )
}

/// The headline e2e: 1 coordinator + 3 workers over real sockets ==
/// single-process 4-shard == 1-shard, bit-for-bit, with every worker a
/// verified replica — and the last round driven through the public
/// HTTP gateway to pin the full wire path.
#[test]
fn three_workers_over_sockets_match_single_process() {
    let seed = 424_242;
    let rounds = 5usize;
    let cmds = command_stream(rounds, seed);
    let workers: Vec<WorkerProc> = (0..3).map(|_| WorkerProc::spawn(seed, 4, None)).collect();
    let (node, pool, dist_reports) = replay_distributed("headline", &cmds, seed, 4, &workers);
    let (local4, local4_reports) = replay_local(&cmds, seed, 4);
    let (local1, _) = replay_local(&cmds, seed, 1);

    // Distributed == single-process M-shard, bit-for-bit.
    assert_eq!(
        node.state_digest(),
        local4.state_digest(),
        "distributed coordinator diverged from single-process 4-shard"
    );
    assert_eq!(dist_reports.len(), local4_reports.len());
    for (a, b) in dist_reports.iter().zip(&local4_reports) {
        assert_eq!(
            report_totals(a),
            report_totals(b),
            "round {} report",
            a.round
        );
    }
    // == 1-shard (ledger + trades; digests differ by shard structure).
    assert_eq!(balances(node.router()), balances(&local1));
    assert_eq!(trades(node.router()), trades(&local1));

    // No worker died, and every worker is a bit-exact replica that
    // really executed the rounds (a local fallback would leave them
    // stale — this is the non-vacuity guard for the distributor path).
    assert_eq!(pool.live_workers(), 3);
    for w in &workers {
        let (digest, worker_rounds) = digest_of(w.addr);
        assert_eq!(
            digest,
            node.state_digest().to_string(),
            "worker replica diverged"
        );
        assert_eq!(worker_rounds, rounds.to_string(), "worker skipped rounds");
    }

    // Full wire path: one more round through the public HTTP gateway.
    let gateway = Gateway::serve(Arc::clone(&node), GatewayConfig::default()).expect("gateway");
    let mut client = Client::connect(gateway.addr()).expect("client");
    client
        .post("/rounds", &Json::obj([("rounds", Json::Num(1.0))]))
        .expect("gateway round");
    let _ = local4.apply(&Command::RunRound { rounds: 1 });
    assert_eq!(
        node.state_digest(),
        local4.state_digest(),
        "gateway-driven distributed round diverged"
    );

    // Coordinator exposition: distributed series present, lints clean.
    let exposition = client.get_text("/metrics").expect("metrics scrape");
    lint_exposition(&exposition).expect("coordinator exposition lints");
    for series in [
        "dmp_worker_rpc_us_count{rpc=\"candidates\"}",
        "dmp_worker_rpc_us_count{rpc=\"settle\"}",
        "dmp_worker_rpc_us_count{rpc=\"restore\"}",
        "dmp_round_settlement_components",
        "dmp_worker_redispatch_total",
    ] {
        assert!(
            exposition.contains(series),
            "coordinator /metrics is missing {series}"
        );
    }

    // Worker exposition over its own socket: lints clean, carries the
    // standard series (the worker runs the same telemetry stack).
    let first = workers.first().expect("spawned three workers");
    let mut worker_client = Client::connect(first.addr).expect("worker client");
    let worker_exposition = worker_client.get_text("/metrics").expect("worker metrics");
    lint_exposition(&worker_exposition).expect("worker exposition lints");
    assert!(
        worker_exposition.contains("dmp_round_settlement_components"),
        "worker ran settlement but exports no component series"
    );
    gateway.shutdown();
}

/// Kill one of three workers at a phase boundary of round 2 and assert
/// the coordinator's final state is bit-identical to the no-failure
/// single-process run, with the survivors still verified replicas.
fn kill_at_phase(phase: &str) {
    let seed = 7_117;
    let rounds = 4usize;
    let cmds = command_stream(rounds, seed);
    let redispatched_before = metrics().worker_redispatch.get();
    let workers = vec![
        WorkerProc::spawn(seed, 4, Some((phase, 2))),
        WorkerProc::spawn(seed, 4, None),
        WorkerProc::spawn(seed, 4, None),
    ];
    let (node, pool, _) = replay_distributed(&format!("kill-{phase}"), &cmds, seed, 4, &workers);
    let (local4, _) = replay_local(&cmds, seed, 4);

    assert_eq!(
        node.state_digest(),
        local4.state_digest(),
        "worker death at {phase} changed the settled state"
    );
    assert_eq!(balances(node.router()), balances(&local4));
    assert_eq!(trades(node.router()), trades(&local4));
    assert_eq!(
        pool.live_workers(),
        2,
        "the killed worker must be out of rotation"
    );
    if phase == "pre-candidate" {
        // The kill interrupted the candidate phase itself, so its
        // shards must have been re-dispatched to the survivors.
        assert!(
            metrics().worker_redispatch.get() > redispatched_before,
            "a pre-candidate death must re-dispatch shards"
        );
    }
    // Survivors finished every round and stayed bit-exact.
    for w in workers.iter().skip(1) {
        let (digest, worker_rounds) = digest_of(w.addr);
        assert_eq!(digest, node.state_digest().to_string(), "survivor diverged");
        assert_eq!(worker_rounds, rounds.to_string(), "survivor skipped rounds");
    }
}

#[test]
fn worker_killed_pre_candidate_is_redispatched() {
    kill_at_phase("pre-candidate");
}

#[test]
fn worker_killed_pre_settle_costs_nothing() {
    kill_at_phase("pre-settle");
}

#[test]
fn worker_killed_mid_settle_costs_nothing() {
    kill_at_phase("mid-settle");
}

/// A worker booted with a different seed has a different config
/// fingerprint: provisioning fails, candidate requests are refused
/// with 409 over the wire, and nothing about the worker's state moves.
#[test]
fn mismatched_worker_is_refused_over_the_wire() {
    let seed = 99;
    let imposter = WorkerProc::spawn(seed + 1, 4, None);
    let cfg = ServiceConfig::new(temp_dir("mismatch", seed), market_config(seed)).with_shards(4);
    let node = Arc::new(ServiceNode::open(cfg).expect("coordinator opens"));
    let pool = Arc::new(
        WorkerPool::connect(node.fingerprint(), 4, &[imposter.addr]).expect("pool connects"),
    );
    assert_eq!(
        pool.provision_all(&node),
        0,
        "a mismatched fingerprint must refuse provisioning"
    );
    assert_eq!(pool.live_workers(), 0);

    // Direct candidate RPC with the coordinator's fingerprint: 409.
    let mut client = Client::connect(imposter.addr).expect("worker reachable");
    let (status, body) = client
        .request(
            "POST",
            "/internal/candidates",
            Some(&Json::obj([
                ("fp", Json::str(node.fingerprint())),
                ("round", Json::str("1")),
                ("seed", Json::str("1")),
                ("shards", Json::Arr(vec![Json::str("0")])),
            ])),
        )
        .expect("rpc completes");
    assert_eq!(status, 409, "{}", body.dump());
    let (_, worker_rounds) = digest_of(imposter.addr);
    assert_eq!(
        worker_rounds, "0",
        "refused requests must not advance state"
    );

    // The round still runs — locally — and matches single-process.
    let cmds = command_stream(2, seed);
    let mut node_reports = Vec::new();
    WorkerPool::attach(&pool, &node);
    for cmd in &cmds {
        if let Ok(Outcome::RoundsRun(mut r)) = node.apply(cmd.clone()) {
            node_reports.append(&mut r);
        }
    }
    let (local4, _) = replay_local(&cmds, seed, 4);
    assert_eq!(
        node.state_digest(),
        local4.state_digest(),
        "all-workers-dead fallback diverged from local compute"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The acceptance property: random streams through a distributed
    /// deployment (1 coordinator + 2 workers, one of which dies
    /// pre-candidate in round 2 and forces a re-dispatch) match the
    /// single-process M-shard and 1-shard runs bit-for-bit.
    #[test]
    fn distributed_matches_single_process_across_kills(case_seed in 0u64..500) {
        let rounds = 3usize;
        let cmds = command_stream(rounds, case_seed);
        let workers = vec![
            WorkerProc::spawn(case_seed, 4, Some(("pre-candidate", 2))),
            WorkerProc::spawn(case_seed, 4, None),
        ];
        let (node, _pool, dist_reports) =
            replay_distributed("prop", &cmds, case_seed, 4, &workers);
        let (local4, local4_reports) = replay_local(&cmds, case_seed, 4);
        let (local1, _) = replay_local(&cmds, case_seed, 1);

        prop_assert_eq!(
            node.state_digest(),
            local4.state_digest(),
            "distributed vs single-process 4-shard digest"
        );
        prop_assert_eq!(balances(node.router()), balances(&local4));
        prop_assert_eq!(balances(node.router()), balances(&local1));
        prop_assert_eq!(trades(node.router()), trades(&local1));
        prop_assert_eq!(dist_reports.len(), local4_reports.len());
        for (a, b) in dist_reports.iter().zip(&local4_reports) {
            prop_assert_eq!(report_totals(a), report_totals(b));
        }
        // The survivor is still a bit-exact replica at full round count.
        let survivor = workers.get(1).expect("two workers spawned");
        let (digest, worker_rounds) = digest_of(survivor.addr);
        prop_assert_eq!(digest, node.state_digest().to_string());
        prop_assert_eq!(worker_rounds, rounds.to_string());
    }
}
