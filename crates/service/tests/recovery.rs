//! Crash-recovery determinism: journal ~50 mixed-command rounds, crash
//! at random byte offsets (torn tail record included), recover via
//! `snapshot + journal replay`, and assert the ledger balances and the
//! offer book are **bit-identical** to an uncrashed run over the same
//! surviving command prefix.

use std::path::{Path, PathBuf};

use dmp_core::market::MarketConfig;
use dmp_mechanism::design::MarketDesign;
use dmp_service::command::{
    AskSpec, CellSpec, ColType, Command, CurveSpec, LicenseSpec, OfferSpec, TableSpec, TaskSpec,
};
use dmp_service::journal::Journal;
use dmp_service::node::{ServiceConfig, ServiceNode};
use dmp_service::shard::ShardRouter;
use rand::{Rng, SeedableRng};

const SHARDS: usize = 3;

fn market_config() -> MarketConfig {
    MarketConfig::external(23).with_design(MarketDesign::posted_price_baseline(12.0))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmp-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn table(name: &str, cols: &[&str], rows: usize, rng: &mut rand::rngs::StdRng) -> TableSpec {
    TableSpec {
        name: name.to_string(),
        columns: cols
            .iter()
            .map(|c| (c.to_string(), ColType::Float))
            .collect(),
        rows: (0..rows)
            .map(|_| {
                cols.iter()
                    .map(|_| CellSpec::Float((rng.gen_range(0i64..1000) as f64) / 10.0))
                    .collect()
            })
            .collect(),
    }
}

/// A deterministic stream of mixed commands: enrolls, deposits, asks,
/// offers, license grants and `rounds` round executions.
fn command_stream(rounds: usize, seed: u64) -> Vec<Command> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cmds = Vec::new();
    let attrs = ["a", "b", "c", "d"];
    // A base population so early rounds have work to do.
    for i in 0..4 {
        cmds.push(Command::Enroll {
            name: format!("seller{i}"),
            role: "seller".into(),
        });
        cmds.push(Command::Enroll {
            name: format!("buyer{i}"),
            role: "buyer".into(),
        });
        cmds.push(Command::Deposit {
            account: format!("buyer{i}"),
            amount: 500.0,
        });
    }
    for round in 0..rounds {
        for _ in 0..rng.gen_range(2usize..6) {
            match rng.gen_range(0u32..10) {
                0..=2 => {
                    let seller = format!("seller{}", rng.gen_range(0usize..4));
                    let n_cols = rng.gen_range(1usize..3);
                    let start = rng.gen_range(0usize..attrs.len() - n_cols + 1);
                    let cols: Vec<&str> = attrs[start..start + n_cols].to_vec();
                    let t = table(&format!("t{round}_{}", cmds.len()), &cols, 4, &mut rng);
                    cmds.push(Command::SubmitAsk(AskSpec {
                        seller,
                        table: t,
                        reserve: if rng.gen::<bool>() {
                            Some(rng.gen_range(0i64..50) as f64 / 10.0)
                        } else {
                            None
                        },
                        license: if rng.gen_bool(0.25) {
                            Some(LicenseSpec::Exclusive {
                                tax_rate: 0.5,
                                hold_rounds: 2,
                            })
                        } else {
                            None
                        },
                    }));
                }
                3..=6 => {
                    let n_attrs = rng.gen_range(1usize..3);
                    let start = rng.gen_range(0usize..attrs.len() - n_attrs + 1);
                    cmds.push(Command::SubmitOffer(OfferSpec {
                        buyer: format!("buyer{}", rng.gen_range(0usize..4)),
                        attributes: attrs[start..start + n_attrs]
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                        keywords: Vec::new(),
                        task: TaskSpec::AttributeCoverage,
                        curve: CurveSpec::Constant(rng.gen_range(10i64..200) as f64 / 10.0),
                        min_rows: 1,
                        purpose: "analytics".into(),
                    }));
                }
                7 => cmds.push(Command::Deposit {
                    account: format!("buyer{}", rng.gen_range(0usize..4)),
                    amount: rng.gen_range(0i64..1000) as f64 / 10.0,
                }),
                8 => cmds.push(Command::GrantLicense {
                    seller: format!("seller{}", rng.gen_range(0usize..4)),
                    dataset: rng.gen_range(0u64..6),
                    license: LicenseSpec::NonTransferable,
                }),
                _ => cmds.push(Command::Enroll {
                    name: format!("late{}", rng.gen_range(0usize..6)),
                    role: "buyer".into(),
                }),
            }
        }
        cmds.push(Command::RunRound { rounds: 1 });
    }
    cmds
}

/// Bit-exact fingerprint of ledger balances and the offer book.
fn fingerprint(router: &ShardRouter) -> (Vec<(usize, String, u64)>, Vec<String>) {
    let mut balances = Vec::new();
    let mut offers = Vec::new();
    for (i, market) in router.shards().iter().enumerate() {
        for (account, balance) in market.ledger().balances() {
            balances.push((i, account, balance.to_bits()));
        }
        for (id, holder, remaining) in market.ledger().escrow_holds() {
            balances.push((i, format!("escrow#{id}:{holder}"), remaining.to_bits()));
        }
        for offer in market.offers() {
            offers.push(format!(
                "shard{} {:?} max_price_bits={}",
                i,
                offer,
                offer.wtp.max_price().to_bits()
            ));
        }
    }
    (balances, offers)
}

/// Reference state: a fresh router with the first `k` commands applied
/// directly (no journal, no snapshots).
fn reference_state(cmds: &[Command], k: usize) -> (Vec<(usize, String, u64)>, Vec<String>) {
    let router = ShardRouter::new(&market_config(), SHARDS);
    for cmd in &cmds[..k] {
        let _ = router.apply(cmd);
    }
    fingerprint(&router)
}

/// Byte offsets where each journal record ends (frame boundaries).
fn record_boundaries(path: &Path) -> Vec<usize> {
    let bytes = std::fs::read(path).unwrap();
    let mut boundaries = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        boundaries.push(pos);
    }
    assert_eq!(pos, bytes.len(), "journal must end on a frame boundary");
    boundaries
}

/// Copy the crash survivors into a fresh dir: the truncated journal and
/// every snapshot taken at or below the surviving sequence number (the
/// WAL is fsync'd before a snapshot is written, so a snapshot can never
/// outlive the journal records it summarizes).
fn copy_crashed(src: &Path, dst: &Path, journal_bytes: &[u8], survivors: usize) {
    std::fs::create_dir_all(dst).unwrap();
    std::fs::write(dst.join("journal.wal"), journal_bytes).unwrap();
    for entry in std::fs::read_dir(src).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        if let Some(seq) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".dmp"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            if seq <= survivors as u64 {
                std::fs::copy(entry.path(), dst.join(&name)).unwrap();
            }
        }
    }
}

#[test]
fn crash_at_random_offsets_recovers_bit_identical_state() {
    let cmds = command_stream(50, 0xfeed);
    let dir = tmp_dir("bitident");
    let cfg = ServiceConfig::new(&dir, market_config())
        .with_shards(SHARDS)
        .with_snapshot_every(40)
        .with_fsync(false);

    // Uncrashed run: journal everything.
    let node = ServiceNode::open(cfg.clone()).unwrap();
    for cmd in &cmds {
        let _ = node.apply(cmd.clone());
    }
    assert_eq!(node.applied(), cmds.len() as u64);
    let full_fingerprint = fingerprint(node.router());
    drop(node);

    let journal_path = dir.join("journal.wal");
    let bytes = std::fs::read(&journal_path).unwrap();
    let boundaries = record_boundaries(&journal_path);
    assert_eq!(boundaries.len(), cmds.len());

    // Crash at random byte offsets — most cuts tear a record in half.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut cuts: Vec<usize> = (0..4)
        .map(|_| rng.gen_range(64usize..bytes.len()))
        .collect();
    cuts.push(bytes.len()); // clean shutdown as a control
    for (case, cut) in cuts.into_iter().enumerate() {
        let survivors = boundaries.iter().filter(|&&b| b <= cut).count();
        let crash_dir = tmp_dir(&format!("bitident-crash{case}"));
        copy_crashed(&dir, &crash_dir, &bytes[..cut], survivors);

        let recovered = ServiceNode::open(
            ServiceConfig::new(&crash_dir, market_config())
                .with_shards(SHARDS)
                .with_snapshot_every(0)
                .with_fsync(false),
        )
        .unwrap();
        assert_eq!(
            recovered.applied(),
            survivors as u64,
            "case {case}: every intact record (and nothing more) replays"
        );

        let (ref_balances, ref_offers) = reference_state(&cmds, survivors);
        let (got_balances, got_offers) = fingerprint(recovered.router());
        assert_eq!(
            got_balances, ref_balances,
            "case {case} (cut {cut}): ledger balances must be bit-identical"
        );
        assert_eq!(
            got_offers, ref_offers,
            "case {case} (cut {cut}): offer book must be bit-identical"
        );
        if survivors == cmds.len() {
            assert_eq!(fingerprint(recovered.router()), full_fingerprint.clone());
        }

        // The truncated journal accepts appends after recovery.
        let (mut journal, records) = Journal::open(crash_dir.join("journal.wal"), false).unwrap();
        assert_eq!(records.len(), survivors);
        journal
            .append(survivors as u64 + 1, &Command::RunRound { rounds: 1 })
            .unwrap();
    }
}

#[test]
fn snapshot_accelerated_recovery_equals_journal_only_recovery() {
    let cmds = command_stream(20, 0xbead);
    let dir_snap = tmp_dir("snapshotted");
    let cfg_snap = ServiceConfig::new(&dir_snap, market_config())
        .with_shards(SHARDS)
        .with_snapshot_every(25)
        .with_fsync(false);
    let node = ServiceNode::open(cfg_snap.clone()).unwrap();
    for cmd in &cmds {
        let _ = node.apply(cmd.clone());
    }
    drop(node);
    assert!(
        dmp_service::snapshot::load_latest(&dir_snap).is_some(),
        "run must have produced at least one snapshot"
    );

    // Recover once with snapshots present, once from the journal alone.
    let with_snap = ServiceNode::open(cfg_snap).unwrap();
    let dir_journal = tmp_dir("journal-only");
    std::fs::copy(
        dir_snap.join("journal.wal"),
        dir_journal.join("journal.wal"),
    )
    .unwrap();
    let journal_only = ServiceNode::open(
        ServiceConfig::new(&dir_journal, market_config())
            .with_shards(SHARDS)
            .with_snapshot_every(0)
            .with_fsync(false),
    )
    .unwrap();

    assert_eq!(with_snap.applied(), journal_only.applied());
    assert_eq!(
        fingerprint(with_snap.router()),
        fingerprint(journal_only.router())
    );
    assert_eq!(with_snap.state_digest(), journal_only.state_digest());
}

#[test]
fn corrupted_snapshot_falls_back_to_journal() {
    let cmds = command_stream(10, 0xabcd);
    let dir = tmp_dir("badsnap");
    let cfg = ServiceConfig::new(&dir, market_config())
        .with_shards(SHARDS)
        .with_snapshot_every(15)
        .with_fsync(false);
    let node = ServiceNode::open(cfg.clone()).unwrap();
    for cmd in &cmds {
        let _ = node.apply(cmd.clone());
    }
    let expect = fingerprint(node.router());
    drop(node);

    // Corrupt every snapshot payload byte-flip-style.
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with("snapshot-") {
            let mut bytes = std::fs::read(entry.path()).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(entry.path(), bytes).unwrap();
        }
    }
    let recovered = ServiceNode::open(cfg).unwrap();
    assert_eq!(fingerprint(recovered.router()), expect);
}
