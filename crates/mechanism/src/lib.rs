//! # dmp-mechanism
//!
//! The market design toolbox (paper §3, Fig. 1 (2); DESIGN.md S7–S11).
//! A market design is "a collection of 5 components that govern the
//! interactions between sellers, buyers, and arbiter": the elicitation
//! protocol, allocation function, payment function, revenue allocation and
//! revenue sharing. This crate implements the first three plus market
//! goals and arbitrage-free query pricing; revenue allocation/sharing live
//! in `dmp-valuation`.
//!
//! * [`wtp`] — willing-to-pay functions: task spec, satisfaction→price
//!   curves, owned data, intrinsic-property constraints (§3.2.2.1);
//! * [`elicitation`] — ex ante and ex post elicitation protocols,
//!   including the audited use-then-pay mechanism of §3.2.2.2;
//! * [`allocation`] — who gets the asset: posted price, k-unit auction,
//!   digital-goods (everyone above price);
//! * [`payment`] — what they pay: first price, Vickrey, Myerson reserve,
//!   Goldberg–Hartline random-sampling optimal price (RSOP);
//! * [`design`] — the bundled [`design::MarketDesign`] + empirical
//!   incentive-compatibility checking;
//! * [`goals`] — market goal metrics (revenue / welfare / transactions);
//! * [`query_pricing`] — arbitrage-free query pricing over view lattices
//!   (§8.2, Koutris et al. style).

pub mod allocation;
pub mod design;
pub mod elicitation;
pub mod goals;
pub mod payment;
pub mod query_pricing;
pub mod wtp;

pub use allocation::{AllocationRule, Bid};
pub use design::{DesignOutcome, MarketDesign, RevenueAllocationMethod, RevenueSharingMethod};
pub use elicitation::{ElicitationProtocol, ExPostMechanism};
pub use goals::{gini, MarketGoal, OutcomeMeasure};
pub use payment::PaymentRule;
pub use wtp::{IntrinsicConstraints, PriceCurve, TaskKind, WtpFunction};
