//! Elicitation protocols (§3.2.2).
//!
//! * **Ex ante** (§3.2.2.1): buyers who know their valuation submit a
//!   WTP-function up front; the arbiter evaluates mashups against it.
//! * **Ex post** (§3.2.2.2): "Buyers get the data they want before they
//!   pay any money for it. After using the data and discovering — a
//!   posteriori — how much they value the dataset, they pay the
//!   corresponding quantity. [...] The crucial aspect of the mechanisms we
//!   are designing is that they make reporting the real value the buyer's
//!   preferred strategy."
//!
//! Our ex post mechanism combines a random audit with a proportional
//! penalty and reputation-based exclusion. A rational buyer with realized
//! value `v` choosing report `r ≤ v` gains `(v − r)` from underreporting
//! but, with audit probability `q`, pays penalty `λ(v − r)` and loses
//! `exclusion_rounds × round_value` of future market surplus. Truthful
//! reporting is the dominant strategy iff
//! `q·λ + q·exclusion_cost/(v−r) ≥ 1` for all profitable deviations — a
//! sufficient, deviation-independent condition is `q·λ ≥ 1`.

/// Which protocol a market design uses.
#[derive(Debug, Clone, PartialEq)]
pub enum ElicitationProtocol {
    /// Declared WTP-function up front; payment decided before delivery.
    ExAnte,
    /// Use-then-pay with audits (parameters below).
    ExPost(ExPostMechanism),
}

/// Parameters of the audited use-then-pay mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct ExPostMechanism {
    /// Probability the arbiter audits a report (it can, e.g., rerun the
    /// buyer's packaged task on the delivered mashup).
    pub audit_prob: f64,
    /// Penalty multiplier on the detected under-report.
    pub penalty_mult: f64,
    /// Rounds of market exclusion on detection.
    pub exclusion_rounds: u32,
    /// Buyer's expected surplus per market round (what exclusion costs).
    pub round_value: f64,
}

impl Default for ExPostMechanism {
    fn default() -> Self {
        // q·λ = 0.5 × 2.5 = 1.25 ≥ 1: truthful without leaning on
        // exclusion.
        ExPostMechanism {
            audit_prob: 0.5,
            penalty_mult: 2.5,
            exclusion_rounds: 3,
            round_value: 0.0,
        }
    }
}

impl ExPostMechanism {
    /// Expected utility of reporting `r` when the true realized value is
    /// `v` (both ≥ 0; over-reporting `r > v` is never profitable and is
    /// modeled as paying the over-report).
    pub fn expected_utility(&self, v: f64, r: f64) -> f64 {
        let r = r.max(0.0);
        if r >= v {
            // paying more than the value: utility v - r (no penalty).
            return v - r;
        }
        let gain = v - r;
        let detection_loss =
            self.penalty_mult * gain + self.exclusion_rounds as f64 * self.round_value;
        v - r - self.audit_prob * detection_loss
    }

    /// The report maximizing expected utility, found on a fine grid over
    /// [0, v]. With a truthful design this returns ≈ v.
    pub fn optimal_report(&self, v: f64) -> f64 {
        const STEPS: usize = 200;
        let mut best = (v, self.expected_utility(v, v));
        for k in 0..=STEPS {
            let r = v * k as f64 / STEPS as f64;
            let u = self.expected_utility(v, r);
            if u > best.1 + 1e-12 {
                best = (r, u);
            }
        }
        best.0
    }

    /// Analytic sufficient condition for truthfulness: the expected
    /// marginal penalty of under-reporting at least offsets the marginal
    /// gain.
    pub fn is_truthful(&self) -> bool {
        self.audit_prob * self.penalty_mult >= 1.0
            || (self.audit_prob > 0.0
                && self.exclusion_rounds > 0
                && self.round_value > 0.0
                && self.audit_prob
                    * (self.penalty_mult + self.exclusion_rounds as f64 * self.round_value)
                    >= 1.0)
    }

    /// Regret of reporting `r` instead of the optimum (≥ 0). For a
    /// truthful design, the regret of truthful reporting is 0.
    pub fn report_regret(&self, v: f64, r: f64) -> f64 {
        let opt = self.optimal_report(v);
        (self.expected_utility(v, opt) - self.expected_utility(v, r)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mechanism_is_truthful() {
        let m = ExPostMechanism::default();
        assert!(m.is_truthful());
        for v in [1.0, 10.0, 123.4] {
            let opt = m.optimal_report(v);
            assert!((opt - v).abs() < 1e-9, "optimal report {opt} != value {v}");
        }
    }

    #[test]
    fn weak_audit_invites_underreporting() {
        let m = ExPostMechanism {
            audit_prob: 0.1,
            penalty_mult: 1.5,
            exclusion_rounds: 0,
            round_value: 0.0,
        };
        assert!(!m.is_truthful());
        let opt = m.optimal_report(100.0);
        assert!(
            opt < 50.0,
            "weak mechanism should invite shading, opt = {opt}"
        );
    }

    #[test]
    fn exclusion_value_can_restore_truthfulness() {
        // qλ = 0.2·1 = 0.2 < 1 alone, but exclusion worth 10/round × 2
        // rounds pushes expected loss above the gain for small deviations;
        // the analytic check uses the sufficient (large-deviation) form.
        let m = ExPostMechanism {
            audit_prob: 0.2,
            penalty_mult: 1.0,
            exclusion_rounds: 2,
            round_value: 10.0,
        };
        assert!(m.is_truthful());
        // Deviations are unprofitable because any detected deviation
        // costs 0.2 × (gain + 20) ≥ gain for gain ≤ 5; the optimizer
        // over the full grid accepts big deviations only if profitable:
        let opt = m.optimal_report(4.0);
        assert!((opt - 4.0).abs() < 1e-9);
    }

    #[test]
    fn overreporting_never_optimal() {
        let m = ExPostMechanism::default();
        assert!(m.expected_utility(10.0, 15.0) < m.expected_utility(10.0, 10.0));
    }

    #[test]
    fn truthful_reporting_has_zero_regret() {
        let m = ExPostMechanism::default();
        assert!(m.report_regret(80.0, 80.0) < 1e-9);
        assert!(m.report_regret(80.0, 20.0) > 0.0);
    }

    #[test]
    fn utility_at_truth_is_zero_surplus_payment() {
        // Paying exactly v leaves zero surplus — the arbiter extracts the
        // full realized value under truthful ex post reporting.
        let m = ExPostMechanism::default();
        assert!((m.expected_utility(50.0, 50.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn zero_value_reports_zero() {
        let m = ExPostMechanism::default();
        assert_eq!(m.optimal_report(0.0), 0.0);
    }
}
