//! Market goals (§3.1): "a market design can be engineered to maximize
//! revenue, to optimize social surplus, and others"; §3.3 maps goals to
//! market types (external → revenue, internal → social welfare).

/// What the market design optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketGoal {
    /// Maximize money extracted from buyers (external markets).
    Revenue,
    /// Maximize total surplus = Σ winners' valuations (internal markets:
    /// "it is reasonable that a market design optimizes social welfare,
    /// that is, the allocation of data to buyers").
    Welfare,
    /// Maximize the number of completed transactions (bootstrap phase /
    /// barter markets).
    Transactions,
}

/// Outcome measurements used to score designs against goals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OutcomeMeasure {
    /// Sum of payments collected.
    pub revenue: f64,
    /// Sum of winning buyers' true valuations.
    pub welfare: f64,
    /// Number of completed transactions.
    pub transactions: usize,
}

impl OutcomeMeasure {
    /// Scalar score under a goal.
    pub fn score(&self, goal: MarketGoal) -> f64 {
        match goal {
            MarketGoal::Revenue => self.revenue,
            MarketGoal::Welfare => self.welfare,
            MarketGoal::Transactions => self.transactions as f64,
        }
    }

    /// Combine two measures (e.g. across rounds).
    pub fn add(&self, other: &OutcomeMeasure) -> OutcomeMeasure {
        OutcomeMeasure {
            revenue: self.revenue + other.revenue,
            welfare: self.welfare + other.welfare,
            transactions: self.transactions + other.transactions,
        }
    }
}

/// Gini coefficient of a revenue distribution — used to measure whether a
/// design concentrates data value "around a few organizations even more"
/// (FAQ §3.4). 0 = perfectly equal, →1 = concentrated.
pub fn gini(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| *x >= 0.0).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let n = v.len() as f64;
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_selects_goal_dimension() {
        let m = OutcomeMeasure {
            revenue: 10.0,
            welfare: 25.0,
            transactions: 3,
        };
        assert_eq!(m.score(MarketGoal::Revenue), 10.0);
        assert_eq!(m.score(MarketGoal::Welfare), 25.0);
        assert_eq!(m.score(MarketGoal::Transactions), 3.0);
    }

    #[test]
    fn add_accumulates() {
        let a = OutcomeMeasure {
            revenue: 1.0,
            welfare: 2.0,
            transactions: 1,
        };
        let b = OutcomeMeasure {
            revenue: 3.0,
            welfare: 4.0,
            transactions: 2,
        };
        let c = a.add(&b);
        assert_eq!(c.revenue, 4.0);
        assert_eq!(c.welfare, 6.0);
        assert_eq!(c.transactions, 3);
    }

    #[test]
    fn gini_equal_distribution_is_zero() {
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-9);
    }

    #[test]
    fn gini_concentrated_distribution_is_high() {
        let g = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(g > 0.7, "gini {g}");
    }

    #[test]
    fn gini_monotone_in_concentration() {
        let even = gini(&[3.0, 3.0, 3.0]);
        let skew = gini(&[1.0, 2.0, 6.0]);
        assert!(skew > even);
    }

    #[test]
    fn gini_degenerate_inputs() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }
}
