//! Arbitrage-free query pricing (§8.2): "The problem is how to price
//! relational queries on that dataset in such a way that arbitrage
//! opportunities (obtaining the same data through a different and cheaper
//! combination of queries) are not possible" (Koutris et al. [61]; revenue
//! maximization per Chawla et al. [20]).
//!
//! Model: a dataset with `n` attributes; a *view* is an attribute subset
//! (bitmask). View `A` determines view `B` iff `B ⊆ A`. A price function
//! `p` is **arbitrage-free** iff it is
//!
//! * *monotone*: `B ⊆ A ⇒ p(B) ≤ p(A)` (you can't buy a superset for
//!   less), and
//! * *subadditive*: `p(A ∪ B) ≤ p(A) + p(B)` (you can't assemble a view
//!   from cheaper pieces).
//!
//! Weighted-coverage pricing (`p(Q) = Σ_{i∈Q} w_i`, `w ≥ 0`) satisfies
//! both by construction; arbitrary per-view price lists generally do not
//! — which is what experiment E10 demonstrates.

use std::collections::HashMap;

/// A view over an `n`-attribute dataset, as a bitmask of attributes.
pub type View = u32;

/// A detected arbitrage opportunity.
#[derive(Debug, Clone, PartialEq)]
pub enum Arbitrage {
    /// `sub ⊆ sup` but `p(sub) > p(sup)`: buy the superset instead.
    MonotonicityViolation {
        /// The overpriced subset view.
        sub: View,
        /// The cheaper superset view.
        sup: View,
        /// Price difference `p(sub) − p(sup)`.
        saving: f64,
    },
    /// `p(a ∪ b) > p(a) + p(b)`: assemble the union from the parts.
    SubadditivityViolation {
        /// First part.
        a: View,
        /// Second part.
        b: View,
        /// Price difference `p(a∪b) − (p(a)+p(b))`.
        saving: f64,
    },
}

/// A price function over views.
pub trait PriceFunction {
    /// Price of a view. Must be defined (≥ 0) for every view queried.
    fn price(&self, view: View) -> f64;
}

/// Arbitrary per-view price list — how ad-hoc data-market pricing works
/// today. Views not listed price at the cheapest listed superset, or at
/// the sum of listed parts (i.e., what a rational buyer would pay), here
/// simplified to `f64::INFINITY` so arbitrage checks operate on the
/// listed views only.
#[derive(Debug, Clone, Default)]
pub struct NaivePricing {
    prices: HashMap<View, f64>,
}

impl NaivePricing {
    /// Empty price list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the price of a view.
    pub fn set(&mut self, view: View, price: f64) -> &mut Self {
        self.prices.insert(view, price);
        self
    }

    /// Listed views.
    pub fn views(&self) -> Vec<View> {
        let mut v: Vec<View> = self.prices.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl PriceFunction for NaivePricing {
    fn price(&self, view: View) -> f64 {
        self.prices.get(&view).copied().unwrap_or(f64::INFINITY)
    }
}

/// Weighted-coverage pricing: `p(Q) = Σ_{i∈Q} w_i` with `w_i ≥ 0`.
/// Monotone and (sub)additive ⇒ arbitrage-free.
#[derive(Debug, Clone)]
pub struct WeightedCoveragePricing {
    weights: Vec<f64>,
}

impl WeightedCoveragePricing {
    /// Build from per-attribute weights (negatives are clamped to 0).
    pub fn new(weights: Vec<f64>) -> Self {
        WeightedCoveragePricing {
            weights: weights.into_iter().map(|w| w.max(0.0)).collect(),
        }
    }

    /// Uniform weight `w` over `n` attributes.
    pub fn uniform(n: usize, w: f64) -> Self {
        Self::new(vec![w; n])
    }

    /// Attribute weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl PriceFunction for WeightedCoveragePricing {
    fn price(&self, view: View) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .filter(|(i, _)| view & (1 << i) != 0)
            .map(|(_, w)| w)
            .sum()
    }
}

/// Scan a set of views for arbitrage opportunities under a price
/// function. O(V²) pairwise checks — V is the *listed/demanded* view set,
/// not the full 2^n lattice.
pub fn find_arbitrage(p: &dyn PriceFunction, views: &[View]) -> Vec<Arbitrage> {
    let mut out = Vec::new();
    for (i, &a) in views.iter().enumerate() {
        for &b in &views[i + 1..] {
            let (pa, pb) = (p.price(a), p.price(b));
            // Monotonicity between comparable pairs.
            if a & b == a && pa > pb + 1e-9 {
                out.push(Arbitrage::MonotonicityViolation {
                    sub: a,
                    sup: b,
                    saving: pa - pb,
                });
            } else if a & b == b && pb > pa + 1e-9 {
                out.push(Arbitrage::MonotonicityViolation {
                    sub: b,
                    sup: a,
                    saving: pb - pa,
                });
            }
            // Subadditivity when the union is also a listed view.
            let u = a | b;
            if u != a && u != b && views.contains(&u) {
                let pu = p.price(u);
                if pu > pa + pb + 1e-9 {
                    out.push(Arbitrage::SubadditivityViolation {
                        a,
                        b,
                        saving: pu - (pa + pb),
                    });
                }
            }
        }
    }
    out
}

/// A buyer's demand: the view they want and their budget for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Desired view.
    pub view: View,
    /// Maximum willingness to pay.
    pub budget: f64,
}

/// Revenue of a price function against a demand profile: each buyer
/// purchases iff `p(view) ≤ budget`, paying `p(view)`.
pub fn revenue(p: &dyn PriceFunction, demand: &[Demand]) -> f64 {
    demand
        .iter()
        .map(|d| {
            let price = p.price(d.view);
            if price <= d.budget {
                price
            } else {
                0.0
            }
        })
        .sum()
}

/// Find a revenue-maximizing *uniform-weight* arbitrage-free pricing for
/// a demand profile: sweep candidate per-attribute weights derived from
/// each buyer's budget-per-attribute and keep the best. Returns the
/// pricing and its revenue. This is the simple 1-parameter member of the
/// arbitrage-free family — already enough to dominate naive pricing in
/// E10 while provably admitting no arbitrage.
pub fn optimize_uniform_pricing(
    n_attrs: usize,
    demand: &[Demand],
) -> (WeightedCoveragePricing, f64) {
    let mut candidates: Vec<f64> = demand
        .iter()
        .filter(|d| d.view != 0)
        .map(|d| d.budget / d.view.count_ones() as f64)
        .filter(|w| *w > 0.0)
        .collect();
    candidates.sort_by(f64::total_cmp);
    candidates.dedup();

    let mut best = (WeightedCoveragePricing::uniform(n_attrs, 0.0), 0.0);
    for w in candidates {
        let p = WeightedCoveragePricing::uniform(n_attrs, w);
        let r = revenue(&p, demand);
        if r > best.1 {
            best = (p, r);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: View = 0b001;
    const B: View = 0b010;
    const AB: View = 0b011;
    const ABC: View = 0b111;

    #[test]
    fn weighted_coverage_prices_by_attribute() {
        let p = WeightedCoveragePricing::new(vec![1.0, 2.0, 4.0]);
        assert_eq!(p.price(A), 1.0);
        assert_eq!(p.price(AB), 3.0);
        assert_eq!(p.price(ABC), 7.0);
        assert_eq!(p.price(0), 0.0);
    }

    #[test]
    fn weighted_coverage_is_arbitrage_free() {
        let p = WeightedCoveragePricing::new(vec![3.0, 1.0, 2.0, 5.0]);
        let views: Vec<View> = (0..16).collect();
        assert!(find_arbitrage(&p, &views).is_empty());
    }

    #[test]
    fn naive_pricing_monotonicity_violation_detected() {
        let mut p = NaivePricing::new();
        p.set(A, 10.0).set(AB, 5.0); // subset costs more than superset
        let arb = find_arbitrage(&p, &p.views());
        assert!(matches!(
            arb.as_slice(),
            [Arbitrage::MonotonicityViolation { sub: a, sup: ab, saving }]
                if *a == A && *ab == AB && (*saving - 5.0).abs() < 1e-9
        ));
    }

    #[test]
    fn naive_pricing_subadditivity_violation_detected() {
        let mut p = NaivePricing::new();
        p.set(A, 2.0).set(B, 2.0).set(AB, 10.0);
        let arb = find_arbitrage(&p, &p.views());
        assert!(arb.iter().any(
            |x| matches!(x, Arbitrage::SubadditivityViolation { saving, .. } if *saving > 5.9)
        ));
    }

    #[test]
    fn consistent_naive_pricing_passes() {
        let mut p = NaivePricing::new();
        p.set(A, 2.0).set(B, 3.0).set(AB, 4.0);
        assert!(find_arbitrage(&p, &p.views()).is_empty());
    }

    #[test]
    fn revenue_counts_only_affordable_buyers() {
        let p = WeightedCoveragePricing::uniform(3, 2.0);
        let demand = vec![
            Demand {
                view: A,
                budget: 3.0,
            }, // pays 2
            Demand {
                view: AB,
                budget: 3.0,
            }, // price 4 > 3: no sale
            Demand {
                view: ABC,
                budget: 10.0,
            }, // pays 6
        ];
        assert!((revenue(&p, &demand) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn optimizer_beats_zero_and_stays_arbitrage_free() {
        let demand = vec![
            Demand {
                view: A,
                budget: 5.0,
            },
            Demand {
                view: AB,
                budget: 8.0,
            },
            Demand {
                view: ABC,
                budget: 9.0,
            },
            Demand {
                view: B,
                budget: 1.0,
            },
        ];
        let (p, r) = optimize_uniform_pricing(3, &demand);
        assert!(r > 0.0);
        let views: Vec<View> = (0..8).collect();
        assert!(find_arbitrage(&p, &views).is_empty());
        // Revenue must be at least what pricing at the min budget/attr gets.
        assert!(r >= 5.0, "revenue {r}");
    }

    #[test]
    fn optimizer_handles_empty_demand() {
        let (_, r) = optimize_uniform_pricing(4, &[]);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn negative_weights_clamped() {
        let p = WeightedCoveragePricing::new(vec![-1.0, 2.0]);
        assert_eq!(p.price(0b01), 0.0);
        assert_eq!(p.price(0b11), 2.0);
    }
}
