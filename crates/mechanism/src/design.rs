//! The bundled market design (§3.1): "a collection of 5 components that
//! govern the interactions between sellers, buyers, and arbiter" —
//! elicitation, allocation, payment, revenue allocation, revenue sharing —
//! engineered toward a goal and checkable for incentive compatibility.
//!
//! The design is *plug'n'play* (§3.3): the same `DataMarket` platform in
//! `dmp-core` accepts any `MarketDesign`, which is exactly the
//! requirement Fig. 1 illustrates (toolbox → rules → simulator → DMMS).

use crate::allocation::{AllocationRule, Bid};
use crate::elicitation::ElicitationProtocol;
use crate::goals::{MarketGoal, OutcomeMeasure};
use crate::payment::PaymentRule;

/// How revenue is allocated to rows of a sold mashup (component 4;
/// computation lives in `dmp-valuation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevenueAllocationMethod {
    /// Every row of the mashup gets an equal share.
    UniformPerRow,
    /// Rows are weighted by Shapley value of the contributing datasets
    /// (Monte-Carlo approximated above the exact-enumeration limit).
    Shapley {
        /// Monte-Carlo permutation samples (ignored when exact is
        /// feasible).
        samples: usize,
    },
    /// Leave-one-out marginal contributions, normalized.
    LeaveOneOut,
}

/// How a row's allocation is shared back to datasets (component 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevenueSharingMethod {
    /// Split each row's value equally among the datasets in its
    /// why-provenance (the provenance-based scheme of §3.2.3).
    ByProvenance,
    /// Split the whole price equally among contributing datasets,
    /// ignoring row structure (baseline).
    EqualPerDataset,
}

/// A complete market design.
#[derive(Debug, Clone)]
pub struct MarketDesign {
    /// Display name.
    pub name: String,
    /// What the design optimizes (§3.3).
    pub goal: MarketGoal,
    /// Component 1: elicitation protocol.
    pub elicitation: ElicitationProtocol,
    /// Component 2: allocation function.
    pub allocation: AllocationRule,
    /// Component 3: payment function.
    pub payment: PaymentRule,
    /// Component 4: revenue allocation.
    pub revenue_allocation: RevenueAllocationMethod,
    /// Component 5: revenue sharing.
    pub revenue_sharing: RevenueSharingMethod,
    /// Fraction of revenue retained by the arbiter (platform fee).
    pub arbiter_fee: f64,
}

impl MarketDesign {
    /// The paper's "today's markets" baseline: posted price, pay the
    /// posted price, uniform revenue split (Dawex-style, §8.1).
    pub fn posted_price_baseline(price: f64) -> Self {
        MarketDesign {
            name: format!("posted-price({price})"),
            goal: MarketGoal::Transactions,
            elicitation: ElicitationProtocol::ExAnte,
            allocation: AllocationRule::PostedPrice(price),
            payment: PaymentRule::PostedPrice(price),
            revenue_allocation: RevenueAllocationMethod::UniformPerRow,
            revenue_sharing: RevenueSharingMethod::EqualPerDataset,
            arbiter_fee: 0.0,
        }
    }

    /// Revenue-maximizing external-market design: digital-goods RSOP
    /// pricing + Shapley revenue allocation + provenance sharing.
    pub fn external_revenue(seed: u64) -> Self {
        MarketDesign {
            name: "external-rsop".into(),
            goal: MarketGoal::Revenue,
            elicitation: ElicitationProtocol::ExAnte,
            allocation: AllocationRule::DigitalGoods,
            payment: PaymentRule::Rsop { seed },
            revenue_allocation: RevenueAllocationMethod::Shapley { samples: 256 },
            revenue_sharing: RevenueSharingMethod::ByProvenance,
            arbiter_fee: 0.05,
        }
    }

    /// Welfare-maximizing internal-market design: allocate to everyone
    /// who values the data (bonus-point economy), Vickrey payments keep
    /// reports honest.
    pub fn internal_welfare() -> Self {
        MarketDesign {
            name: "internal-welfare".into(),
            goal: MarketGoal::Welfare,
            elicitation: ElicitationProtocol::ExAnte,
            allocation: AllocationRule::DigitalGoods,
            payment: PaymentRule::PostedPrice(0.0),
            revenue_allocation: RevenueAllocationMethod::UniformPerRow,
            revenue_sharing: RevenueSharingMethod::ByProvenance,
            arbiter_fee: 0.0,
        }
    }

    /// Scarce-license design: k exclusive licenses, Vickrey with reserve.
    pub fn scarce_licenses(k: usize, reserve: f64) -> Self {
        MarketDesign {
            name: format!("scarce-{k}"),
            goal: MarketGoal::Revenue,
            elicitation: ElicitationProtocol::ExAnte,
            allocation: AllocationRule::TopK(k),
            payment: PaymentRule::VickreyReserve { reserve },
            revenue_allocation: RevenueAllocationMethod::Shapley { samples: 256 },
            revenue_sharing: RevenueSharingMethod::ByProvenance,
            arbiter_fee: 0.05,
        }
    }

    /// Run one auction round: allocate, price, measure.
    pub fn run_auction(&self, bids: &[Bid], valuations: &[f64]) -> DesignOutcome {
        let winners = self.allocation.allocate(bids);
        let payments = self.payment.payments(bids, &winners);
        let revenue: f64 = payments.iter().map(|(_, p)| p).sum();
        let welfare: f64 = payments
            .iter()
            .map(|(i, _)| valuations.get(*i).copied().unwrap_or(bids[*i].amount))
            .sum();
        DesignOutcome {
            payments: payments.clone(),
            measure: OutcomeMeasure {
                revenue,
                welfare,
                transactions: payments.len(),
            },
        }
    }
}

/// Result of one auction round.
#[derive(Debug, Clone)]
pub struct DesignOutcome {
    /// `(bid index, price)` for each transacting buyer.
    pub payments: Vec<(usize, f64)>,
    /// Goal measurements.
    pub measure: OutcomeMeasure,
}

/// Empirical incentive-compatibility check: for each bidder, scan a grid
/// of misreport factors and measure the best utility gain over truthful
/// bidding, holding others fixed (unilateral deviations, i.e. dominant-
/// strategy flavor against this bid profile).
#[derive(Debug, Clone, PartialEq)]
pub struct IcReport {
    /// Largest utility gain any bidder achieves by deviating.
    pub max_gain: f64,
    /// The deviating bidder index, if any gain exists.
    pub best_deviator: Option<usize>,
    /// True iff no deviation improves utility by more than `tol`.
    pub is_ic: bool,
}

/// Utility of bidder `i` with valuation `v`: `v − price` if transacting,
/// else 0.
fn utility(outcome: &DesignOutcome, i: usize, v: f64) -> f64 {
    outcome
        .payments
        .iter()
        .find(|(w, _)| *w == i)
        .map(|(_, p)| v - p)
        .unwrap_or(0.0)
}

/// Check empirical IC for a design given true valuations. `grid` is the
/// set of misreport factors applied to the true value (e.g. 0.0..=1.5).
pub fn empirical_ic_check(design: &MarketDesign, valuations: &[f64], grid: &[f64]) -> IcReport {
    let truthful: Vec<Bid> = valuations
        .iter()
        .enumerate()
        .map(|(i, &v)| Bid::new(format!("b{i}"), v))
        .collect();
    let base = design.run_auction(&truthful, valuations);

    let mut max_gain: f64 = 0.0;
    let mut best_deviator = None;
    for i in 0..valuations.len() {
        let u_truth = utility(&base, i, valuations[i]);
        for &f in grid {
            let mut bids = truthful.clone();
            bids[i].amount = valuations[i] * f;
            let out = design.run_auction(&bids, valuations);
            let u_dev = utility(&out, i, valuations[i]);
            if u_dev - u_truth > max_gain {
                max_gain = u_dev - u_truth;
                best_deviator = Some(i);
            }
        }
    }
    IcReport {
        max_gain,
        best_deviator,
        is_ic: max_gain <= 1e-9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<f64> {
        (0..=30).map(|k| k as f64 / 20.0).collect() // 0.0 .. 1.5
    }

    #[test]
    fn vickrey_single_unit_is_ic() {
        let design = MarketDesign {
            name: "vickrey-1".into(),
            goal: MarketGoal::Revenue,
            elicitation: ElicitationProtocol::ExAnte,
            allocation: AllocationRule::TopK(1),
            payment: PaymentRule::Vickrey,
            revenue_allocation: RevenueAllocationMethod::UniformPerRow,
            revenue_sharing: RevenueSharingMethod::ByProvenance,
            arbiter_fee: 0.0,
        };
        let vals = vec![10.0, 25.0, 40.0, 5.0];
        let report = empirical_ic_check(&design, &vals, &grid());
        assert!(
            report.is_ic,
            "Vickrey must be IC, gain = {}",
            report.max_gain
        );
    }

    #[test]
    fn first_price_is_not_ic() {
        let design = MarketDesign {
            name: "first-price".into(),
            goal: MarketGoal::Revenue,
            elicitation: ElicitationProtocol::ExAnte,
            allocation: AllocationRule::TopK(1),
            payment: PaymentRule::FirstPrice,
            revenue_allocation: RevenueAllocationMethod::UniformPerRow,
            revenue_sharing: RevenueSharingMethod::ByProvenance,
            arbiter_fee: 0.0,
        };
        let vals = vec![10.0, 25.0, 40.0, 5.0];
        let report = empirical_ic_check(&design, &vals, &grid());
        assert!(!report.is_ic, "first price invites shading");
        assert_eq!(report.best_deviator, Some(2)); // the winner shades
    }

    #[test]
    fn posted_price_is_ic_for_exogenous_price() {
        // With a fixed posted price, reports don't change the price —
        // bidding truthfully is (weakly) dominant.
        let design = MarketDesign::posted_price_baseline(20.0);
        let vals = vec![10.0, 25.0, 40.0];
        let report = empirical_ic_check(&design, &vals, &grid());
        assert!(report.is_ic);
    }

    #[test]
    fn rsop_is_ic_in_expectation_per_split() {
        // For a fixed split (fixed seed), no bidder gains by misreporting:
        // the price a bidder faces comes from the other half.
        let design = MarketDesign::external_revenue(11);
        let vals: Vec<f64> = (1..=20).map(|i| i as f64 * 5.0).collect();
        let report = empirical_ic_check(&design, &vals, &grid());
        assert!(
            report.max_gain < 1e-9,
            "RSOP deviation gain {} should be 0",
            report.max_gain
        );
    }

    #[test]
    fn run_auction_measures_outcome() {
        let design = MarketDesign::posted_price_baseline(15.0);
        let bids = vec![
            Bid::new("a", 10.0),
            Bid::new("b", 20.0),
            Bid::new("c", 30.0),
        ];
        let vals = vec![10.0, 20.0, 30.0];
        let out = design.run_auction(&bids, &vals);
        assert_eq!(out.measure.transactions, 2);
        assert_eq!(out.measure.revenue, 30.0);
        assert_eq!(out.measure.welfare, 50.0);
    }

    #[test]
    fn preset_designs_have_expected_goals() {
        assert_eq!(MarketDesign::external_revenue(0).goal, MarketGoal::Revenue);
        assert_eq!(MarketDesign::internal_welfare().goal, MarketGoal::Welfare);
        assert_eq!(
            MarketDesign::posted_price_baseline(1.0).goal,
            MarketGoal::Transactions
        );
        assert_eq!(
            MarketDesign::scarce_licenses(2, 5.0).allocation,
            AllocationRule::TopK(2)
        );
    }

    #[test]
    fn internal_market_charges_nothing() {
        let design = MarketDesign::internal_welfare();
        let bids = vec![Bid::new("a", 5.0), Bid::new("b", 0.5)];
        let out = design.run_auction(&bids, &[5.0, 0.5]);
        assert_eq!(out.measure.revenue, 0.0);
        assert_eq!(out.measure.transactions, 2);
        assert_eq!(out.measure.welfare, 5.5);
    }
}
