//! Payment functions (§3.1): "how much money buyers need to pay to obtain
//! the mashup".
//!
//! Includes the mechanisms the paper builds on for freely-replicable
//! goods: Vickrey/second-price with a Myerson reserve [67] for scarce
//! licenses, and the Goldberg–Hartline random-sampling optimal price
//! auction (RSOP) [45, 46] for digital goods — truthful even with
//! infinite supply, which posted-price-with-known-demand is not.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::allocation::Bid;

/// What winners pay.
#[derive(Debug, Clone, PartialEq)]
pub enum PaymentRule {
    /// Winners pay their own bid.
    FirstPrice,
    /// Winners pay the highest losing bid (uniform (k+1)-price for k
    /// winners); truthful for scarce goods.
    Vickrey,
    /// Everyone pays the posted price.
    PostedPrice(f64),
    /// Second-price with a reserve; with a Myerson-optimal reserve this
    /// maximizes expected revenue for one unit.
    VickreyReserve {
        /// Minimum acceptable price.
        reserve: f64,
    },
    /// Random Sampling Optimal Price (digital goods, infinite supply):
    /// bidders are split in two halves; each half is offered the other
    /// half's empirically optimal fixed price. Truthful because no
    /// bidder's report influences the price they face.
    Rsop {
        /// RNG seed for the split (determinism in tests/benches).
        seed: u64,
    },
    /// Generalized second price (the ad-auction rule of §3.2.1 [67,48]):
    /// winners are ranked by bid and the k-th ranked winner pays the
    /// (k+1)-th ranked bid — positional pricing for ranked slots (e.g.
    /// placement in the arbiter's recommendation list).
    GeneralizedSecondPrice,
}

/// A priced winner: `(bid index, price to pay)`.
pub type Payment = (usize, f64);

/// Myerson-optimal reserve price for valuations drawn from U[0, high]:
/// `high / 2` (the virtual-value zero crossing for the uniform
/// distribution, Myerson 1981).
pub fn myerson_reserve_uniform(high: f64) -> f64 {
    high / 2.0
}

/// The revenue-optimal single fixed price against a set of bids:
/// maximizes `price × |{b ≥ price}|` over candidate prices (all bids).
/// Returns `(price, revenue)`; `(0, 0)` for no bids.
pub fn optimal_fixed_price(bids: &[f64]) -> (f64, f64) {
    let mut sorted: Vec<f64> = bids.iter().copied().filter(|b| *b > 0.0).collect();
    sorted.sort_by(|a, b| b.total_cmp(a)); // descending
    let mut best = (0.0, 0.0);
    for (i, &p) in sorted.iter().enumerate() {
        let revenue = p * (i + 1) as f64;
        if revenue > best.1 {
            best = (p, revenue);
        }
    }
    best
}

impl PaymentRule {
    /// Compute payments for the winner set chosen by the allocation rule.
    ///
    /// For `Rsop`, `winners` is ignored (the rule determines its own
    /// winners among all bids); for the others, `winners` are indices
    /// into `bids`.
    pub fn payments(&self, bids: &[Bid], winners: &[usize]) -> Vec<Payment> {
        match self {
            PaymentRule::FirstPrice => winners.iter().map(|&i| (i, bids[i].amount)).collect(),
            PaymentRule::PostedPrice(p) => winners
                .iter()
                .filter(|&&i| bids[i].amount >= *p)
                .map(|&i| (i, *p))
                .collect(),
            PaymentRule::Vickrey => {
                let price = highest_losing_bid(bids, winners).unwrap_or(0.0);
                winners
                    .iter()
                    .map(|&i| (i, price.min(bids[i].amount)))
                    .collect()
            }
            PaymentRule::VickreyReserve { reserve } => {
                let floor = highest_losing_bid(bids, winners)
                    .unwrap_or(0.0)
                    .max(*reserve);
                winners
                    .iter()
                    .filter(|&&i| bids[i].amount >= floor)
                    .map(|&i| (i, floor))
                    .collect()
            }
            PaymentRule::Rsop { seed } => rsop(bids, *seed),
            PaymentRule::GeneralizedSecondPrice => gsp(bids, winners),
        }
    }
}

/// GSP: rank winners by bid descending; winner at rank k pays the bid of
/// the next-ranked bidder (winner or not), 0 for the last slot when no
/// lower bid exists.
fn gsp(bids: &[Bid], winners: &[usize]) -> Vec<Payment> {
    // Global ranking of all bids, descending (ties by index).
    let mut order: Vec<usize> = (0..bids.len()).collect();
    order.sort_by(|&a, &b| {
        bids[b]
            .amount
            .total_cmp(&bids[a].amount)
            .then_with(|| a.cmp(&b))
    });
    let mut out: Vec<Payment> = Vec::new();
    for &w in winners {
        let rank = order
            .iter()
            .position(|&i| i == w)
            .expect("winner indexes bids");
        let price = order
            .get(rank + 1)
            .map(|&next| bids[next].amount)
            .unwrap_or(0.0)
            .min(bids[w].amount);
        out.push((w, price));
    }
    out.sort_unstable_by_key(|p| p.0);
    out
}

/// The highest bid not in the winner set.
fn highest_losing_bid(bids: &[Bid], winners: &[usize]) -> Option<f64> {
    bids.iter()
        .enumerate()
        .filter(|(i, _)| !winners.contains(i))
        .map(|(_, b)| b.amount)
        .max_by(f64::total_cmp)
}

/// Goldberg–Hartline RSOP: random split A/B; offer B the optimal fixed
/// price computed on A, and vice versa.
fn rsop(bids: &[Bid], seed: u64) -> Vec<Payment> {
    if bids.is_empty() {
        return Vec::new();
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..bids.len()).collect();
    idx.shuffle(&mut rng);
    let half = idx.len() / 2;
    let (a_idx, b_idx) = idx.split_at(half);

    let a_bids: Vec<f64> = a_idx.iter().map(|&i| bids[i].amount).collect();
    let b_bids: Vec<f64> = b_idx.iter().map(|&i| bids[i].amount).collect();
    let (price_for_b, _) = optimal_fixed_price(&a_bids);
    let (price_for_a, _) = optimal_fixed_price(&b_bids);

    let mut out: Vec<Payment> = Vec::new();
    for &i in a_idx {
        if price_for_a > 0.0 && bids[i].amount >= price_for_a {
            out.push((i, price_for_a));
        }
    }
    for &i in b_idx {
        if price_for_b > 0.0 && bids[i].amount >= price_for_b {
            out.push((i, price_for_b));
        }
    }
    out.sort_unstable_by_key(|p| p.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bids() -> Vec<Bid> {
        vec![
            Bid::new("a", 10.0),
            Bid::new("b", 30.0),
            Bid::new("c", 20.0),
            Bid::new("d", 5.0),
        ]
    }

    #[test]
    fn first_price_pays_own_bid() {
        let p = PaymentRule::FirstPrice.payments(&bids(), &[1, 2]);
        assert_eq!(p, vec![(1, 30.0), (2, 20.0)]);
    }

    #[test]
    fn vickrey_pays_highest_loser() {
        // winners = {b, c}; highest loser = a at 10.
        let p = PaymentRule::Vickrey.payments(&bids(), &[1, 2]);
        assert_eq!(p, vec![(1, 10.0), (2, 10.0)]);
    }

    #[test]
    fn vickrey_single_winner_classic_second_price() {
        let p = PaymentRule::Vickrey.payments(&bids(), &[1]);
        assert_eq!(p, vec![(1, 20.0)]); // pays c's bid
    }

    #[test]
    fn vickrey_all_winners_pay_zero() {
        let p = PaymentRule::Vickrey.payments(&bids(), &[0, 1, 2, 3]);
        assert!(p.iter().all(|&(_, x)| x == 0.0));
    }

    #[test]
    fn reserve_floors_the_price() {
        let p = PaymentRule::VickreyReserve { reserve: 25.0 }.payments(&bids(), &[1]);
        assert_eq!(p, vec![(1, 25.0)]);
        // bidders below the reserve drop out even if allocated
        let p = PaymentRule::VickreyReserve { reserve: 25.0 }.payments(&bids(), &[1, 2]);
        assert_eq!(p, vec![(1, 25.0)]);
    }

    #[test]
    fn posted_price_drops_low_bids() {
        let p = PaymentRule::PostedPrice(15.0).payments(&bids(), &[0, 1, 2, 3]);
        assert_eq!(p, vec![(1, 15.0), (2, 15.0)]);
    }

    #[test]
    fn optimal_fixed_price_maximizes_revenue() {
        // bids 10,30,20,5: price 10 -> 30; price 20 -> 40; price 30 -> 30.
        let (p, r) = optimal_fixed_price(&[10.0, 30.0, 20.0, 5.0]);
        assert_eq!(p, 20.0);
        assert_eq!(r, 40.0);
    }

    #[test]
    fn optimal_fixed_price_empty() {
        assert_eq!(optimal_fixed_price(&[]), (0.0, 0.0));
    }

    #[test]
    fn myerson_reserve_for_uniform() {
        assert_eq!(myerson_reserve_uniform(100.0), 50.0);
    }

    #[test]
    fn gsp_positions_pay_next_bid() {
        // bids 10, 30, 20, 5; winners = top 2 = {b(30), c(20)}.
        let p = PaymentRule::GeneralizedSecondPrice.payments(&bids(), &[1, 2]);
        // b (rank 1) pays c's 20; c (rank 2) pays a's 10.
        assert_eq!(p, vec![(1, 20.0), (2, 10.0)]);
    }

    #[test]
    fn gsp_last_slot_pays_zero_when_alone() {
        let solo = vec![Bid::new("only", 9.0)];
        let p = PaymentRule::GeneralizedSecondPrice.payments(&solo, &[0]);
        assert_eq!(p, vec![(0, 0.0)]);
    }

    #[test]
    fn gsp_never_charges_above_bid() {
        let tied = vec![
            Bid::new("a", 10.0),
            Bid::new("b", 10.0),
            Bid::new("c", 10.0),
        ];
        let p = PaymentRule::GeneralizedSecondPrice.payments(&tied, &[0, 1]);
        for (i, price) in p {
            assert!(price <= tied[i].amount + 1e-12);
        }
    }

    #[test]
    fn rsop_winners_pay_at_most_their_bid() {
        let many: Vec<Bid> = (0..50)
            .map(|i| Bid::new(format!("b{i}"), (i % 10 + 1) as f64 * 10.0))
            .collect();
        let p = PaymentRule::Rsop { seed: 42 }.payments(&many, &[]);
        assert!(!p.is_empty());
        for (i, price) in &p {
            assert!(many[*i].amount >= *price);
            assert!(*price > 0.0);
        }
    }

    #[test]
    fn rsop_price_is_uniform_within_each_half() {
        let many: Vec<Bid> = (0..40)
            .map(|i| Bid::new(format!("b{i}"), 1.0 + i as f64))
            .collect();
        let p = PaymentRule::Rsop { seed: 1 }.payments(&many, &[]);
        let mut distinct: Vec<u64> = p.iter().map(|(_, x)| x.to_bits()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() <= 2,
            "at most two price levels, got {distinct:?}"
        );
    }

    #[test]
    fn rsop_empty_is_empty() {
        assert!(PaymentRule::Rsop { seed: 0 }.payments(&[], &[]).is_empty());
    }

    #[test]
    fn rsop_deterministic_per_seed() {
        let many: Vec<Bid> = (0..30)
            .map(|i| Bid::new(format!("b{i}"), (i * 7 % 13) as f64))
            .collect();
        let p1 = PaymentRule::Rsop { seed: 9 }.payments(&many, &[]);
        let p2 = PaymentRule::Rsop { seed: 9 }.payments(&many, &[]);
        assert_eq!(p1, p2);
    }
}
