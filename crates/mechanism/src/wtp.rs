//! Willing-to-pay functions (§3.2.2.1). The WTP-function has four
//! components: (1) a package with the data task; (2) a function assigning
//! a price to each degree of satisfaction; (3) packaged data the buyer
//! already owns; (4) a list of intrinsic dataset properties the buyer
//! cares about (expiry, freshness, authorship, provenance, quality, ...).

use dmp_relation::Relation;

/// The data-task package: what the buyer wants to compute, which
/// attributes it needs, and which metric defines satisfaction. The
/// arbiter's WTP-Evaluator (in `dmp-core`) binds each kind to an
/// executable task from `dmp-tasks`.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// Train a classifier on `label` from the other attributes; the
    /// satisfaction metric is held-out accuracy.
    Classification {
        /// Label column name.
        label: String,
    },
    /// Fit a regression on `target`; satisfaction is clamped R².
    Regression {
        /// Target column name.
        target: String,
    },
    /// Run a group-by query; satisfaction is AQP-style completeness
    /// (fraction of expected groups covered).
    AggregateCompleteness {
        /// Group-by column.
        group_by: String,
        /// Number of distinct groups the buyer expects to see.
        expected_groups: usize,
    },
    /// Satisfaction = fraction of requested attributes present with
    /// acceptable null ratios (a pure data-acquisition task).
    AttributeCoverage,
}

/// A buyer's full WTP-function.
#[derive(Debug, Clone)]
pub struct WtpFunction {
    /// The buyer principal submitting this function.
    pub buyer: String,
    /// Attributes the buyer needs (query-by-example schema, e.g.
    /// ⟨a, b, d, e⟩ in the paper's intro example).
    pub attributes: Vec<String>,
    /// Optional topic keywords for discovery.
    pub keywords: Vec<String>,
    /// The task package.
    pub task: TaskKind,
    /// satisfaction → money curve.
    pub curve: PriceCurve,
    /// Intrinsic property constraints.
    pub constraints: IntrinsicConstraints,
    /// Data the buyer already owns and will not pay for; the arbiter may
    /// augment it (the "packaged data" component).
    pub owned_data: Option<Relation>,
    /// Minimum rows for a usable mashup.
    pub min_rows: usize,
}

impl WtpFunction {
    /// A minimal WTP-function: attribute acquisition with a step curve.
    pub fn simple<S: Into<String>>(
        buyer: impl Into<String>,
        attributes: impl IntoIterator<Item = S>,
        curve: PriceCurve,
    ) -> Self {
        WtpFunction {
            buyer: buyer.into(),
            attributes: attributes.into_iter().map(Into::into).collect(),
            keywords: Vec::new(),
            task: TaskKind::AttributeCoverage,
            curve,
            constraints: IntrinsicConstraints::default(),
            owned_data: None,
            min_rows: 1,
        }
    }

    /// The maximum the buyer would ever pay (price at satisfaction 1.0).
    pub fn max_price(&self) -> f64 {
        self.curve.price(1.0)
    }
}

/// A satisfaction→price curve. Satisfaction is always in [0, 1].
#[derive(Debug, Clone, PartialEq)]
pub enum PriceCurve {
    /// Step thresholds: sorted ascending by satisfaction; the price is
    /// the highest step whose threshold is met; 0 below the first. The
    /// paper's example: "$100 for any dataset that permits the model
    /// achieve 80% accuracy, and $150 if the accuracy goes beyond 90%"
    /// is `Step(vec![(0.8, 100.0), (0.9, 150.0)])`.
    Step(Vec<(f64, f64)>),
    /// 0 below `min_satisfaction`, then linear up to `max_price` at 1.0.
    Linear {
        /// Satisfaction below which the buyer pays nothing.
        min_satisfaction: f64,
        /// Price at full satisfaction.
        max_price: f64,
    },
    /// Pay a constant regardless of satisfaction (ex post reporting uses
    /// this as the declared cap).
    Constant(f64),
}

impl PriceCurve {
    /// Price at a satisfaction level (clamped to [0, 1]).
    pub fn price(&self, satisfaction: f64) -> f64 {
        let s = satisfaction.clamp(0.0, 1.0);
        match self {
            PriceCurve::Step(steps) => {
                let mut p = 0.0;
                for &(threshold, price) in steps {
                    if s >= threshold {
                        p = price;
                    } else {
                        break;
                    }
                }
                p
            }
            PriceCurve::Linear {
                min_satisfaction,
                max_price,
            } => {
                if s < *min_satisfaction {
                    0.0
                } else if *min_satisfaction >= 1.0 {
                    *max_price
                } else {
                    max_price * (s - min_satisfaction) / (1.0 - min_satisfaction)
                }
            }
            PriceCurve::Constant(p) => *p,
        }
    }

    /// A scaled copy (used by shading strategies in the simulator).
    pub fn scaled(&self, factor: f64) -> PriceCurve {
        match self {
            PriceCurve::Step(steps) => {
                PriceCurve::Step(steps.iter().map(|&(t, p)| (t, p * factor)).collect())
            }
            PriceCurve::Linear {
                min_satisfaction,
                max_price,
            } => PriceCurve::Linear {
                min_satisfaction: *min_satisfaction,
                max_price: max_price * factor,
            },
            PriceCurve::Constant(p) => PriceCurve::Constant(p * factor),
        }
    }
}

/// Intrinsic-property constraints (§3.2.2.1, fourth WTP component, and
/// §2: "intrinsic properties are important insofar the buyers indicate a
/// preference as part of their data demands").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntrinsicConstraints {
    /// Data registered more than this many logical ticks ago is rejected
    /// ("the buyer may indicate the need for data not older than 2
    /// months, fearing concept drift").
    pub max_age: Option<u64>,
    /// The WTP offer itself expires at this logical time.
    pub expires_at: Option<u64>,
    /// Acceptable authors/owners; empty = anyone.
    pub authors: Vec<String>,
    /// Buyer requires provenance information on every mashup row.
    pub require_provenance: bool,
    /// Maximum tolerated per-column null ratio.
    pub max_missing_ratio: Option<f64>,
}

impl IntrinsicConstraints {
    /// No constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// Check dataset-level metadata against the constraints.
    pub fn admits_dataset(&self, registered_at: u64, owner: &str, now: u64) -> bool {
        if let Some(max_age) = self.max_age {
            if now.saturating_sub(registered_at) > max_age {
                return false;
            }
        }
        if !self.authors.is_empty() && !self.authors.iter().any(|a| a == owner) {
            return false;
        }
        true
    }

    /// Check a materialized mashup against the constraints.
    pub fn admits_mashup(&self, mashup: &Relation) -> bool {
        if self.require_provenance && mashup.rows().iter().any(|r| r.provenance().is_empty()) {
            return false;
        }
        if let Some(max_missing) = self.max_missing_ratio {
            for col in mashup.schema().names().collect::<Vec<_>>() {
                if mashup.null_ratio(col).unwrap_or(1.0) > max_missing {
                    return false;
                }
            }
        }
        true
    }

    /// Is the offer still live at `now`?
    pub fn is_live(&self, now: u64) -> bool {
        self.expires_at.is_none_or(|e| now <= e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, DatasetId, RelationBuilder, Value};

    #[test]
    fn step_curve_matches_paper_example() {
        let c = PriceCurve::Step(vec![(0.8, 100.0), (0.9, 150.0)]);
        assert_eq!(c.price(0.5), 0.0);
        assert_eq!(c.price(0.8), 100.0);
        assert_eq!(c.price(0.85), 100.0);
        assert_eq!(c.price(0.95), 150.0);
        assert_eq!(c.price(2.0), 150.0); // clamped
    }

    #[test]
    fn linear_curve_interpolates() {
        let c = PriceCurve::Linear {
            min_satisfaction: 0.5,
            max_price: 100.0,
        };
        assert_eq!(c.price(0.4), 0.0);
        assert_eq!(c.price(0.5), 0.0);
        assert!((c.price(0.75) - 50.0).abs() < 1e-9);
        assert!((c.price(1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_linear_min_one() {
        let c = PriceCurve::Linear {
            min_satisfaction: 1.0,
            max_price: 40.0,
        };
        assert_eq!(c.price(1.0), 40.0);
        assert_eq!(c.price(0.99), 0.0);
    }

    #[test]
    fn scaling_shades_prices_not_thresholds() {
        let c = PriceCurve::Step(vec![(0.8, 100.0)]).scaled(0.5);
        assert_eq!(c.price(0.9), 50.0);
        assert_eq!(c.price(0.7), 0.0);
    }

    #[test]
    fn constant_curve() {
        let c = PriceCurve::Constant(30.0);
        assert_eq!(c.price(0.0), 30.0);
        assert_eq!(c.price(1.0), 30.0);
    }

    #[test]
    fn max_price_is_full_satisfaction_price() {
        let w = WtpFunction::simple(
            "b1",
            ["a"],
            PriceCurve::Step(vec![(0.8, 100.0), (0.9, 150.0)]),
        );
        assert_eq!(w.max_price(), 150.0);
    }

    #[test]
    fn freshness_constraint() {
        let c = IntrinsicConstraints {
            max_age: Some(10),
            ..Default::default()
        };
        assert!(c.admits_dataset(95, "anyone", 100));
        assert!(!c.admits_dataset(80, "anyone", 100));
    }

    #[test]
    fn authorship_constraint() {
        let c = IntrinsicConstraints {
            authors: vec!["alice".into()],
            ..Default::default()
        };
        assert!(c.admits_dataset(0, "alice", 0));
        assert!(!c.admits_dataset(0, "bob", 0));
    }

    #[test]
    fn expiry_gates_offers() {
        let c = IntrinsicConstraints {
            expires_at: Some(50),
            ..Default::default()
        };
        assert!(c.is_live(50));
        assert!(!c.is_live(51));
        assert!(IntrinsicConstraints::none().is_live(u64::MAX));
    }

    #[test]
    fn missing_ratio_gate() {
        let r = RelationBuilder::new("m")
            .column("x", DataType::Int)
            .row(vec![Value::Int(1)])
            .row(vec![Value::Null])
            .source(DatasetId(1))
            .build()
            .unwrap();
        let tight = IntrinsicConstraints {
            max_missing_ratio: Some(0.1),
            ..Default::default()
        };
        let loose = IntrinsicConstraints {
            max_missing_ratio: Some(0.9),
            ..Default::default()
        };
        assert!(!tight.admits_mashup(&r));
        assert!(loose.admits_mashup(&r));
    }

    #[test]
    fn provenance_requirement() {
        let with_prov = RelationBuilder::new("m")
            .column("x", DataType::Int)
            .row(vec![Value::Int(1)])
            .source(DatasetId(1))
            .build()
            .unwrap();
        let without = RelationBuilder::new("m")
            .column("x", DataType::Int)
            .row(vec![Value::Int(1)])
            .build()
            .unwrap();
        let c = IntrinsicConstraints {
            require_provenance: true,
            ..Default::default()
        };
        assert!(c.admits_mashup(&with_prov));
        assert!(!c.admits_mashup(&without));
    }
}
