//! Allocation functions (§3.1, §3.2.1): "at any given time, multiple
//! buyers may want to buy a particular mashup of interest. The allocation
//! function solves which buyers get what mashup."
//!
//! Data's free replicability makes this unusual: supply is infinite, so
//! "it could be trivially allocated to anyone who wants it [... which] is
//! at odds with eliciting truthful behavior from buyers". The rules here
//! cover the classic scarce-goods auctions *and* the digital-goods case
//! the paper builds on ([45, 46]).

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One buyer's bid for an asset.
#[derive(Debug, Clone, PartialEq)]
pub struct Bid {
    /// Bidder principal.
    pub bidder: String,
    /// Monetary bid (the WTP-evaluator output for this mashup).
    pub amount: f64,
}

impl Bid {
    /// Construct a bid.
    pub fn new(bidder: impl Into<String>, amount: f64) -> Self {
        Bid {
            bidder: bidder.into(),
            amount,
        }
    }
}

/// Who gets the asset.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocationRule {
    /// Everyone bidding at least the posted price wins (how Dawex-style
    /// markets work today, §8.1).
    PostedPrice(f64),
    /// The `k` highest bids win (artificial scarcity, e.g. exclusive or
    /// limited licenses, §4.4).
    TopK(usize),
    /// Digital goods: every bidder *can* win; the payment rule decides
    /// the price and winners are those whose bid meets it.
    DigitalGoods,
    /// A uniform random subset wins (used as a strategy-free control in
    /// simulations).
    Lottery {
        /// Number of winners.
        winners: usize,
        /// RNG seed (determinism).
        seed: u64,
    },
}

impl AllocationRule {
    /// Indices of winning bids. Ties at the TopK boundary are broken by
    /// bid order (earlier bids win), which is deterministic.
    pub fn allocate(&self, bids: &[Bid]) -> Vec<usize> {
        match self {
            AllocationRule::PostedPrice(p) => bids
                .iter()
                .enumerate()
                .filter(|(_, b)| b.amount >= *p)
                .map(|(i, _)| i)
                .collect(),
            AllocationRule::TopK(k) => {
                let mut order: Vec<usize> = (0..bids.len()).collect();
                order.sort_by(|&a, &b| {
                    bids[b]
                        .amount
                        .total_cmp(&bids[a].amount)
                        .then_with(|| a.cmp(&b))
                });
                order.truncate(*k);
                order.sort_unstable();
                order
            }
            AllocationRule::DigitalGoods => (0..bids.len()).collect(),
            AllocationRule::Lottery { winners, seed } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
                let mut idx: Vec<usize> = (0..bids.len()).collect();
                idx.shuffle(&mut rng);
                idx.truncate(*winners);
                idx.sort_unstable();
                idx
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bids() -> Vec<Bid> {
        vec![
            Bid::new("a", 10.0),
            Bid::new("b", 30.0),
            Bid::new("c", 20.0),
            Bid::new("d", 5.0),
        ]
    }

    #[test]
    fn posted_price_filters_by_threshold() {
        let w = AllocationRule::PostedPrice(15.0).allocate(&bids());
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn posted_price_boundary_inclusive() {
        let w = AllocationRule::PostedPrice(30.0).allocate(&bids());
        assert_eq!(w, vec![1]);
    }

    #[test]
    fn top_k_takes_highest() {
        let w = AllocationRule::TopK(2).allocate(&bids());
        assert_eq!(w, vec![1, 2]); // 30 and 20
    }

    #[test]
    fn top_k_ties_break_by_order() {
        let tied = vec![
            Bid::new("a", 10.0),
            Bid::new("b", 10.0),
            Bid::new("c", 10.0),
        ];
        let w = AllocationRule::TopK(2).allocate(&tied);
        assert_eq!(w, vec![0, 1]);
    }

    #[test]
    fn top_k_larger_than_field_takes_all() {
        let w = AllocationRule::TopK(10).allocate(&bids());
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn digital_goods_admits_everyone() {
        let w = AllocationRule::DigitalGoods.allocate(&bids());
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn lottery_is_deterministic_per_seed() {
        let a = AllocationRule::Lottery {
            winners: 2,
            seed: 7,
        }
        .allocate(&bids());
        let b = AllocationRule::Lottery {
            winners: 2,
            seed: 7,
        }
        .allocate(&bids());
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_bids_empty_winners() {
        assert!(AllocationRule::TopK(3).allocate(&[]).is_empty());
        assert!(AllocationRule::PostedPrice(1.0).allocate(&[]).is_empty());
    }
}
