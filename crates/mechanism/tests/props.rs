//! Property tests for the market design toolbox: auction invariants,
//! price-curve monotonicity, ex post truthfulness, and the no-arbitrage
//! guarantee of weighted-coverage pricing — over random instances.

use proptest::prelude::*;

use dmp_mechanism::allocation::{AllocationRule, Bid};
use dmp_mechanism::design::{empirical_ic_check, MarketDesign};
use dmp_mechanism::elicitation::ExPostMechanism;
use dmp_mechanism::payment::PaymentRule;
use dmp_mechanism::query_pricing::{find_arbitrage, WeightedCoveragePricing};
use dmp_mechanism::wtp::PriceCurve;

fn bids(amounts: &[f64]) -> Vec<Bid> {
    amounts
        .iter()
        .enumerate()
        .map(|(i, &a)| Bid::new(format!("b{i}"), a))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No winner ever pays more than their bid (individual rationality
    /// for truthful bidders) under every payment rule.
    #[test]
    fn payments_never_exceed_bids(
        amounts in prop::collection::vec(0.1f64..100.0, 2..30),
        k in 1usize..5,
        reserve in 0.0f64..50.0,
        seed in 0u64..1000,
    ) {
        let bs = bids(&amounts);
        let rules: Vec<(AllocationRule, PaymentRule)> = vec![
            (AllocationRule::TopK(k), PaymentRule::Vickrey),
            (AllocationRule::TopK(k), PaymentRule::FirstPrice),
            (AllocationRule::TopK(1), PaymentRule::VickreyReserve { reserve }),
            (AllocationRule::PostedPrice(reserve), PaymentRule::PostedPrice(reserve)),
            (AllocationRule::DigitalGoods, PaymentRule::Rsop { seed }),
            (AllocationRule::TopK(k), PaymentRule::GeneralizedSecondPrice),
        ];
        for (alloc, pay) in rules {
            let winners = alloc.allocate(&bs);
            for (i, price) in pay.payments(&bs, &winners) {
                prop_assert!(
                    price <= bs[i].amount + 1e-9,
                    "{pay:?} charged {price} > bid {}",
                    bs[i].amount
                );
                prop_assert!(price >= 0.0);
            }
        }
    }

    /// Vickrey uniform price: all winners pay the same, and that price
    /// is at most the lowest winning bid.
    #[test]
    fn vickrey_uniform_price(amounts in prop::collection::vec(0.1f64..100.0, 3..20), k in 1usize..4) {
        let bs = bids(&amounts);
        let winners = AllocationRule::TopK(k).allocate(&bs);
        let payments = PaymentRule::Vickrey.payments(&bs, &winners);
        if payments.len() >= 2 {
            let first = payments[0].1;
            for (_, p) in &payments {
                prop_assert!((p - first).abs() < 1e-9);
            }
        }
        for (i, p) in &payments {
            prop_assert!(*p <= bs[*i].amount + 1e-9);
        }
    }

    /// Vickrey single-unit is IC for any valuation profile: empirical
    /// deviation scan finds no profitable unilateral misreport.
    #[test]
    fn vickrey_single_unit_always_ic(vals in prop::collection::vec(1.0f64..100.0, 2..8)) {
        let design = MarketDesign::scarce_licenses(1, 0.0);
        let grid: Vec<f64> = (0..=20).map(|x| x as f64 / 10.0).collect();
        let report = empirical_ic_check(&design, &vals, &grid);
        prop_assert!(report.is_ic, "gain {}", report.max_gain);
    }

    /// Price curves are monotone non-decreasing in satisfaction.
    #[test]
    fn price_curves_monotone(
        steps in prop::collection::vec((0.0f64..1.0, 0.0f64..200.0), 1..5),
        s1 in 0.0f64..1.0,
        s2 in 0.0f64..1.0,
    ) {
        // sort steps by threshold and make prices non-decreasing so the
        // curve is well-formed
        let mut steps = steps;
        steps.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut price = 0.0f64;
        for s in &mut steps {
            price = price.max(s.1);
            s.1 = price;
        }
        let curve = PriceCurve::Step(steps);
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(curve.price(lo) <= curve.price(hi) + 1e-12);
    }

    /// Ex post: whenever q·λ ≥ 1 the optimizer reports the full value;
    /// whenever q·λ < 1 (and no exclusion), it underreports.
    #[test]
    fn ex_post_truthfulness_boundary(q in 0.05f64..1.0, l in 0.1f64..4.0, v in 1.0f64..200.0) {
        let mech = ExPostMechanism {
            audit_prob: q,
            penalty_mult: l,
            exclusion_rounds: 0,
            round_value: 0.0,
        };
        let opt = mech.optimal_report(v);
        if q * l >= 1.0 + 1e-9 {
            prop_assert!((opt - v).abs() < 1e-6, "q*l={} opt={opt} v={v}", q * l);
        } else if q * l < 1.0 - 1e-9 {
            prop_assert!(opt < v - 1e-6, "q*l={} should underreport, opt={opt}", q * l);
        }
    }

    /// Weighted-coverage pricing is arbitrage-free for ANY non-negative
    /// weights and ANY view set (the core soundness claim behind E10).
    #[test]
    fn weighted_coverage_never_admits_arbitrage(
        weights in prop::collection::vec(0.0f64..20.0, 1..10),
        views in prop::collection::vec(1u32..1024, 1..30),
    ) {
        let n = weights.len();
        let mask = (1u32 << n) - 1;
        let views: Vec<u32> = views.into_iter().map(|v| v & mask).filter(|v| *v != 0).collect();
        let pricing = WeightedCoveragePricing::new(weights);
        prop_assert!(find_arbitrage(&pricing, &views).is_empty());
    }

    /// Allocation rules never allocate to out-of-range indices, and
    /// digital goods admits everyone.
    #[test]
    fn allocation_indices_valid(amounts in prop::collection::vec(0.0f64..100.0, 0..20), k in 0usize..25) {
        let bs = bids(&amounts);
        for rule in [
            AllocationRule::TopK(k),
            AllocationRule::DigitalGoods,
            AllocationRule::PostedPrice(50.0),
            AllocationRule::Lottery { winners: k, seed: 1 },
        ] {
            let winners = rule.allocate(&bs);
            for w in &winners {
                prop_assert!(*w < bs.len());
            }
            // no duplicates
            let mut sorted = winners.clone();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), winners.len());
        }
        prop_assert_eq!(AllocationRule::DigitalGoods.allocate(&bs).len(), bs.len());
    }
}
