//! Std-backed shim for the `parking_lot` API subset used in this
//! workspace. The build environment has no network access and an empty
//! cargo registry, so external crates are vendored as minimal
//! API-compatible shims under `compat/` (see the workspace README).
//!
//! Semantics match `parking_lot` where it matters for this codebase:
//! `lock()`/`read()`/`write()` never return poison errors — a panicked
//! holder does not poison the lock for later users.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::MutexGuard;
pub use sync::{RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex over [`std::sync::Mutex`].
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// Non-poisoning reader–writer lock over [`std::sync::RwLock`].
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(sync::TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // not poisoned
    }
}
