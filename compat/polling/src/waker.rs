//! Cross-thread wakeup for a blocked [`crate::Poller::wait`].
//!
//! The waker is just another readable fd: register [`Waker::fd`] with
//! the poller under a reserved token, call [`Waker::wake`] from any
//! thread, and the reactor sees a readable event. Wakes **coalesce**
//! (N wakes before a drain produce one readiness edge), so the wake
//! path stays O(1) no matter how fast completions arrive. The reactor
//! calls [`Waker::drain`] once per wakeup to quiet the fd again.

use std::io;
use std::os::fd::RawFd;

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use std::ffi::c_void;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};

    use crate::sys::{eventfd, read, write, EFD_CLOEXEC, EFD_NONBLOCK};

    /// An `eventfd(2)`-backed waker: one fd, a 64-bit kernel counter,
    /// writes add to it, one read clears it.
    pub struct Waker {
        fd: OwnedFd,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Waker {
                fd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        pub fn fd(&self) -> RawFd {
            self.fd.as_raw_fd()
        }

        pub fn wake(&self) -> io::Result<()> {
            let one: u64 = 1;
            let rc = unsafe {
                write(
                    self.fd.as_raw_fd(),
                    (&one as *const u64).cast::<c_void>(),
                    8,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                // EAGAIN: the counter is saturated — a wake is already
                // pending, which is all a coalescing waker promises.
                if err.kind() == io::ErrorKind::WouldBlock {
                    return Ok(());
                }
                return Err(err);
            }
            Ok(())
        }

        pub fn drain(&self) {
            let mut buf: u64 = 0;
            unsafe {
                read(
                    self.fd.as_raw_fd(),
                    (&mut buf as *mut u64).cast::<c_void>(),
                    8,
                )
            };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::*;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;

    /// Portable waker: a connected loopback UDP socket pair. `wake`
    /// sends a datagram to the receive side; `drain` reads until empty.
    pub struct Waker {
        rx: UdpSocket,
        tx: UdpSocket,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let rx = UdpSocket::bind("127.0.0.1:0")?;
            rx.set_nonblocking(true)?;
            let tx = UdpSocket::bind("127.0.0.1:0")?;
            tx.set_nonblocking(true)?;
            tx.connect(rx.local_addr()?)?;
            Ok(Waker { rx, tx })
        }

        pub fn fd(&self) -> RawFd {
            self.rx.as_raw_fd()
        }

        pub fn wake(&self) -> io::Result<()> {
            match self.tx.send(&[1u8]) {
                Ok(_) => Ok(()),
                // A full socket buffer means wakes are already pending.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
                Err(e) => Err(e),
            }
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            while matches!(self.rx.recv(&mut buf), Ok(_)) {}
        }
    }
}

pub use imp::Waker;

// SAFETY: both implementations are plain fds whose syscalls are
// thread-safe; wake/drain from different threads is the entire point.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}
