//! Linux epoll backend (level-triggered).

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

use crate::sys::{
    epoll_create1, epoll_ctl, epoll_event, epoll_wait, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT,
    EPOLLRDHUP, EPOLL_CLOEXEC, EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD,
};
use crate::{timeout_ms, Event, Interest};

/// Largest batch of events collected per `wait` call. Level-triggered
/// epoll re-reports anything that did not fit, so this bounds stack
/// use, not correctness.
const MAX_EVENTS: usize = 256;

/// An epoll instance.
pub struct Poller {
    ep: OwnedFd,
}

impl Poller {
    /// Create an epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            ep: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut ev = epoll_event {
            events: mask(interest),
            data: token as u64,
        };
        let rc = unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Start watching `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change the interest set (and/or token) of a registered fd.
    pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Stop watching `fd`. Must be called before the fd is closed.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = epoll_event { events: 0, data: 0 };
        let rc = unsafe { epoll_ctl(self.ep.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait forever). Replaces the contents of
    /// `events`; returns the number of events delivered.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let mut raw = [epoll_event { events: 0, data: 0 }; MAX_EVENTS];
        let rc = unsafe {
            epoll_wait(
                self.ep.as_raw_fd(),
                raw.as_mut_ptr(),
                MAX_EVENTS as i32,
                timeout_ms(timeout),
            )
        };
        let n = if rc >= 0 {
            rc as usize
        } else {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // Signal during the wait: report an empty batch rather
            // than re-arming with the full timeout (the reactor's
            // timer bookkeeping wants the early return).
            0
        };
        for raw_ev in raw.iter().take(n) {
            // Copy out of the (packed on x86-64) struct before use.
            let bits = { raw_ev.events };
            let token = { raw_ev.data } as usize;
            events.push(Event {
                token,
                readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                closed: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

fn mask(interest: Interest) -> u32 {
    let mut bits = EPOLLRDHUP; // always learn about peer half-close
    if interest.read {
        bits |= EPOLLIN;
    }
    if interest.write {
        bits |= EPOLLOUT;
    }
    bits
}
