//! Raw Linux syscall-wrapper declarations. No `libc` crate exists in
//! this offline workspace, but the symbols below live in the C runtime
//! (`glibc`/`musl`) that every Rust binary on Linux already links, so a
//! plain `extern "C"` block reaches them.

#![allow(non_camel_case_types)]

use std::ffi::{c_int, c_void};

pub const EPOLL_CLOEXEC: c_int = 0o2000000;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

/// `struct epoll_event`. The kernel ABI packs it on x86-64 (so the
/// 64-bit `data` field sits at offset 4); other architectures use
/// natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn eventfd(initval: u32, flags: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}
