//! Offline readiness-reactor shim (`mio`/`polling`-style).
//!
//! The build environment has no crates.io access, so async runtimes and
//! `mio` itself cannot be pulled in; this crate provides the minimal
//! primitive they all sit on: an OS readiness queue. On Linux the
//! backend is **epoll** via direct FFI to the raw syscall wrappers (no
//! `libc` crate — the symbols live in the C runtime every Rust binary
//! already links). Everywhere else (and for conformance testing on
//! Linux) a portable **`poll(2)`** backend implements the same API.
//!
//! The API surface is exactly what an evented server needs and nothing
//! more:
//!
//! * [`Poller`] — register / modify / deregister interest in a raw fd
//!   under a caller-chosen `usize` token, then [`Poller::wait`] for
//!   readiness [`Event`]s (level-triggered on both backends).
//! * [`Waker`] — wake a blocked [`Poller::wait`] from another thread
//!   (an `eventfd` on Linux, a loopback UDP socket pair elsewhere).
//!
//! Level-triggered semantics were chosen deliberately: a fd stays ready
//! until drained, so a reactor that processes only part of a socket's
//! input is re-notified on the next `wait` — no lost-wakeup class of
//! bugs, at the cost of re-arming discipline for write interest.
//!
//! Callers must [`Poller::deregister`] a fd **before** closing it;
//! closing a registered fd leaves a stale entry (harmless on epoll,
//! an `POLLNVAL`-filtered slot on the fallback) until then.

use std::time::Duration;

#[cfg(target_os = "linux")]
mod epoll;
mod pollfb;
#[cfg(target_os = "linux")]
mod sys;
mod waker;

#[cfg(target_os = "linux")]
pub use epoll::Poller;
/// The portable `poll(2)` backend, always available (on Linux it exists
/// so conformance tests can run both backends side by side).
pub use pollfb::PollPoller;
#[cfg(not(target_os = "linux"))]
pub use pollfb::PollPoller as Poller;
pub use waker::Waker;

/// Which readiness directions a registration listens for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Notify when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Notify when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// Reading will not block (data, EOF, or an error to collect).
    /// Errors and hang-ups are folded in deliberately: the caller's
    /// read path observes them as `Ok(0)`/`Err` and tears down.
    pub readable: bool,
    /// Writing will not block (or will fail fast — errors fold in).
    pub writable: bool,
    /// The peer closed its end (hang-up); a final read may still
    /// return buffered data on some platforms.
    pub closed: bool,
}

/// Clamp an optional timeout to the millisecond precision the OS queues
/// take, rounding *up* so a 100µs timeout polls in 1ms instead of
/// busy-looping at 0.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                let ms = d.as_millis();
                let ms = if d.subsec_nanos() % 1_000_000 != 0 || ms == 0 {
                    ms + 1
                } else {
                    ms
                };
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

/// Backend-agnostic conformance tests: every `Poller` implementation
/// must pass these against real OS sockets.
#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::time::Instant;

    macro_rules! conformance {
        ($name:ident, $poller:ty) => {
            mod $name {
                use super::*;

                #[test]
                fn idle_wait_times_out() {
                    let p = <$poller>::new().unwrap();
                    let mut events = Vec::new();
                    let t0 = Instant::now();
                    let n = p
                        .wait(&mut events, Some(Duration::from_millis(20)))
                        .unwrap();
                    assert_eq!(n, 0);
                    assert!(t0.elapsed() >= Duration::from_millis(15));
                }

                #[test]
                fn listener_becomes_readable_on_connect() {
                    let p = <$poller>::new().unwrap();
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    listener.set_nonblocking(true).unwrap();
                    p.register(listener.as_raw_fd(), 7, Interest::READ).unwrap();
                    let mut events = Vec::new();
                    let n = p
                        .wait(&mut events, Some(Duration::from_millis(50)))
                        .unwrap();
                    assert_eq!(n, 0, "no connection yet");

                    let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let n = p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
                    assert_eq!(n, 1);
                    assert_eq!(events[0].token, 7);
                    assert!(events[0].readable);
                    p.deregister(listener.as_raw_fd()).unwrap();
                }

                #[test]
                fn write_interest_and_modify() {
                    let p = <$poller>::new().unwrap();
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (server, _) = listener.accept().unwrap();
                    client.set_nonblocking(true).unwrap();

                    // A fresh socket with empty send buffer is writable.
                    p.register(client.as_raw_fd(), 1, Interest::WRITE).unwrap();
                    let mut events = Vec::new();
                    p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
                    assert!(events.iter().any(|e| e.token == 1 && e.writable));

                    // Swap to read interest: no data yet, so no events.
                    p.modify(client.as_raw_fd(), 1, Interest::READ).unwrap();
                    let n = p
                        .wait(&mut events, Some(Duration::from_millis(30)))
                        .unwrap();
                    assert_eq!(n, 0);

                    // Send a byte: now readable.
                    (&server).write_all(b"x").unwrap();
                    p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
                    assert!(events.iter().any(|e| e.token == 1 && e.readable));
                    p.deregister(client.as_raw_fd()).unwrap();
                    drop(server);
                }

                #[test]
                fn peer_close_is_readable() {
                    let p = <$poller>::new().unwrap();
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (server, _) = listener.accept().unwrap();
                    client.set_nonblocking(true).unwrap();
                    p.register(client.as_raw_fd(), 3, Interest::READ).unwrap();
                    drop(server);
                    let mut events = Vec::new();
                    p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
                    let ev = events.iter().find(|e| e.token == 3).expect("event");
                    assert!(ev.readable, "hang-up folds into readable");
                    let mut c = client;
                    let mut buf = [0u8; 8];
                    assert_eq!(c.read(&mut buf).unwrap(), 0, "read observes EOF");
                    p.deregister(c.as_raw_fd()).unwrap();
                }

                #[test]
                fn waker_wakes_a_blocked_wait() {
                    let p = Arc::new(<$poller>::new().unwrap());
                    let waker = Arc::new(Waker::new().unwrap());
                    p.register(waker.fd(), 0, Interest::READ).unwrap();
                    let w = Arc::clone(&waker);
                    let handle = std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(50));
                        w.wake().unwrap();
                    });
                    let mut events = Vec::new();
                    // No timeout: only the waker can unblock this.
                    let n = p.wait(&mut events, Some(Duration::from_secs(30))).unwrap();
                    assert_eq!(n, 1);
                    assert_eq!(events[0].token, 0);
                    waker.drain();
                    // Drained: the level-triggered queue goes quiet again.
                    let n = p
                        .wait(&mut events, Some(Duration::from_millis(20)))
                        .unwrap();
                    assert_eq!(n, 0);
                    handle.join().unwrap();
                    p.deregister(waker.fd()).unwrap();
                }

                #[test]
                fn coalesced_wakes_drain_in_one_pass() {
                    let p = <$poller>::new().unwrap();
                    let waker = Waker::new().unwrap();
                    p.register(waker.fd(), 9, Interest::READ).unwrap();
                    for _ in 0..100 {
                        waker.wake().unwrap();
                    }
                    let mut events = Vec::new();
                    let n = p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
                    assert_eq!(n, 1, "wakes coalesce into one readiness event");
                    waker.drain();
                    let n = p
                        .wait(&mut events, Some(Duration::from_millis(20)))
                        .unwrap();
                    assert_eq!(n, 0);
                }
            }
        };
    }

    #[cfg(target_os = "linux")]
    conformance!(epoll_backend, crate::Poller);
    conformance!(poll_backend, crate::PollPoller);
}
