//! Portable `poll(2)` backend: a registry of fds re-submitted to the
//! kernel on every wait. O(registered fds) per call where epoll is
//! O(ready fds) — fine as a fallback and as a conformance oracle for
//! the epoll backend, not meant for 10k-connection deployments.

#![allow(non_camel_case_types)]

use std::collections::BTreeMap;
use std::ffi::c_int;
use std::io;
use std::os::fd::RawFd;
use std::sync::Mutex;
use std::time::Duration;

use crate::{timeout_ms, Event, Interest};

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

#[repr(C)]
#[derive(Clone, Copy)]
struct pollfd {
    fd: c_int,
    events: i16,
    revents: i16,
}

#[cfg(any(target_os = "linux", target_os = "android"))]
type nfds_t = std::ffi::c_ulong;
#[cfg(not(any(target_os = "linux", target_os = "android")))]
type nfds_t = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
}

/// A `poll(2)`-backed readiness queue.
pub struct PollPoller {
    registry: Mutex<BTreeMap<RawFd, (usize, Interest)>>,
}

impl PollPoller {
    /// Create an empty registry.
    pub fn new() -> io::Result<PollPoller> {
        Ok(PollPoller {
            registry: Mutex::new(BTreeMap::new()),
        })
    }

    /// Start watching `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut reg = self.registry.lock().unwrap();
        if reg.insert(fd, (token, interest)).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        Ok(())
    }

    /// Change the interest set (and/or token) of a registered fd.
    pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut reg = self.registry.lock().unwrap();
        match reg.get_mut(&fd) {
            Some(slot) => {
                *slot = (token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Stop watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut reg = self.registry.lock().unwrap();
        match reg.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Block until a registered fd is ready or `timeout` elapses
    /// (`None` = wait forever). Replaces the contents of `events`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        // Snapshot the registry so other threads can (de)register while
        // this thread sleeps in the kernel.
        let (mut fds, tokens): (Vec<pollfd>, Vec<usize>) = {
            let reg = self.registry.lock().unwrap();
            reg.iter()
                .map(|(&fd, &(token, interest))| {
                    let mut ev = 0i16;
                    if interest.read {
                        ev |= POLLIN;
                    }
                    if interest.write {
                        ev |= POLLOUT;
                    }
                    (
                        pollfd {
                            fd,
                            events: ev,
                            revents: 0,
                        },
                        token,
                    )
                })
                .unzip()
        };
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as nfds_t, timeout_ms(timeout)) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0); // match the epoll backend's EINTR shape
            }
            return Err(err);
        }
        for (pfd, &token) in fds.iter().zip(&tokens) {
            let bits = pfd.revents;
            if bits == 0 || bits & POLLNVAL != 0 {
                // POLLNVAL: the fd was closed without deregistering —
                // skip the stale slot (the owner is mid-teardown).
                continue;
            }
            events.push(Event {
                token,
                readable: bits & (POLLIN | POLLHUP | POLLERR) != 0,
                writable: bits & (POLLOUT | POLLHUP | POLLERR) != 0,
                closed: bits & POLLHUP != 0,
            });
        }
        Ok(events.len())
    }
}
