//! Config, case errors, and the deterministic test RNG.

use rand::SeedableRng;

/// The RNG driving case generation.
pub type TestRng = rand::rngs::StdRng;

/// FNV-1a over a string — stable seeds from test names.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A deterministic RNG derived from a test's fully qualified name.
pub fn rng_for(test_name: &str) -> TestRng {
    TestRng::seed_from_u64(fnv1a(test_name))
}

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep the offline suite
    /// quick; tests needing more set `with_cases` explicitly.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// Assumption failure — discard and regenerate.
    Reject(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}
