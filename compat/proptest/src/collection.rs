//! Collection strategies (`prop::collection` subset).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy generating `Vec`s of `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating `HashSet`s with `size.into()` *attempted*
/// insertions (duplicates collapse, as in upstream proptest).
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: std::hash::Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: std::hash::Hash + Eq,
{
    type Value = std::collections::HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating `BTreeMap`s with `size.into()` *attempted*
/// insertions (duplicate keys collapse, as in upstream proptest).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = std::collections::BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
