//! Shim for the `proptest` API subset used in this workspace. The build
//! environment has no network access and an empty cargo registry, so
//! external crates are vendored as minimal API-compatible shims under
//! `compat/` (see the workspace README).
//!
//! Supported: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! numeric-range / tuple / `prop::collection::vec` / regex-literal
//! string strategies, [`strategy::Strategy::prop_map`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!` macros. Unlike upstream there is **no shrinking**: a
//! failing case panics with the generated inputs' `Debug` rendering so
//! it can be reproduced by hand. Case generation is deterministic per
//! test function (seeded from the test's module path + name).

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod bool {
    //! Boolean strategies (`proptest::bool` subset).

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rand::Rng::gen::<bool>(rng)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Mirrors the `prop::` module alias from upstream's prelude.
        pub use crate::collection;
    }
}

/// Bundle property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::rng_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                if __attempts > __config.cases.saturating_mul(16).max(64) {
                    panic!(
                        "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), __accepted, __config.cases
                    );
                }
                let __vals = ( $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+ );
                let __rendered = format!("{:#?}", __vals);
                let ( $($arg,)+ ) = __vals;
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}\ninputs: {}",
                            stringify!($name), __accepted, __msg, __rendered
                        );
                    }
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Discard the current case (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).into(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(
            x in 1u64..100,
            v in prop::collection::vec(0.0f64..1.0, 2..8),
            s in "[a-z]{1,5}",
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
            prop_assert!(!s.is_empty() && s.len() <= 5);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn prop_map_and_assume(n in 0u32..50) {
            prop_assume!(n % 2 == 0);
            let doubled = (0u32..10).prop_map(move |k| k + n);
            let mut rng = crate::test_runner::rng_for("inner");
            let v = Strategy::generate(&doubled, &mut rng);
            prop_assert!(v >= n && v < n + 10);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failing_case_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
