//! Regex-subset string generation for string-literal strategies.
//!
//! Supports the constructs this workspace's tests actually use, plus a
//! little headroom: literal chars, `[...]` classes with ranges, the
//! escapes `\d` `\w` `\s` `\PC` (printable, i.e. non-control), `.`, and
//! the quantifiers `*` `+` `?` `{m}` `{m,n}`. Unbounded quantifiers cap
//! repetition at 32. Unsupported syntax falls back to treating the
//! offending char as a literal.

use rand::Rng;

use crate::test_runner::TestRng;

/// One generatable unit of the pattern.
enum Piece {
    /// Choose uniformly from these chars.
    Class(Vec<char>),
    /// Exactly this char.
    Literal(char),
}

/// Repetition bounds for a piece.
struct Quant {
    lo: usize,
    hi: usize,
}

const UNBOUNDED_CAP: usize = 32;

fn printable_pool() -> Vec<char> {
    // ASCII printable plus a few multibyte chars so `\PC*` exercises
    // non-ASCII handling downstream.
    let mut pool: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    pool.extend(['é', 'ß', 'λ', '中', '🙂']);
    pool
}

fn digit_pool() -> Vec<char> {
    ('0'..='9').collect()
}

fn word_pool() -> Vec<char> {
    let mut pool: Vec<char> = ('a'..='z').collect();
    pool.extend('A'..='Z');
    pool.extend('0'..='9');
    pool.push('_');
    pool
}

fn space_pool() -> Vec<char> {
    vec![' ', '\t', '\n']
}

/// Parse a `[...]` class body starting after `[`; returns (chars, next index).
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut pool = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo <= hi {
                pool.extend((lo..=hi).filter(|c| c.is_ascii() || lo > '\u{7f}'));
            }
            i += 3;
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            pool.push(chars[i + 1]);
            i += 2;
        } else {
            pool.push(chars[i]);
            i += 1;
        }
    }
    (pool, i + 1) // skip ']'
}

/// Parse a quantifier at `i`, if any; returns (bounds, next index).
fn parse_quant(chars: &[char], i: usize) -> (Quant, usize) {
    match chars.get(i) {
        Some('*') => (
            Quant {
                lo: 0,
                hi: UNBOUNDED_CAP,
            },
            i + 1,
        ),
        Some('+') => (
            Quant {
                lo: 1,
                hi: UNBOUNDED_CAP,
            },
            i + 1,
        ),
        Some('?') => (Quant { lo: 0, hi: 1 }, i + 1),
        Some('{') => {
            let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p);
            match close {
                Some(end) => {
                    let body: String = chars[i + 1..end].iter().collect();
                    let parts: Vec<&str> = body.splitn(2, ',').collect();
                    let lo = parts[0].trim().parse().unwrap_or(1);
                    let hi = if parts.len() == 2 {
                        parts[1].trim().parse().unwrap_or(UNBOUNDED_CAP)
                    } else {
                        lo
                    };
                    (Quant { lo, hi: hi.max(lo) }, end + 1)
                }
                None => (Quant { lo: 1, hi: 1 }, i),
            }
        }
        _ => (Quant { lo: 1, hi: 1 }, i),
    }
}

fn parse(pattern: &str) -> Vec<(Piece, Quant)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let piece = match chars[i] {
            '[' => {
                let (pool, next) = parse_class(&chars, i + 1);
                i = next;
                Piece::Class(pool)
            }
            '.' => {
                i += 1;
                Piece::Class(printable_pool())
            }
            '\\' if i + 1 < chars.len() => {
                let esc = chars[i + 1];
                i += 2;
                match esc {
                    'd' => Piece::Class(digit_pool()),
                    'w' => Piece::Class(word_pool()),
                    's' => Piece::Class(space_pool()),
                    'P' | 'p' => {
                        // `\PC` / `\p{..}`-style: treat as "printable".
                        if chars.get(i) == Some(&'C') {
                            i += 1;
                        } else if chars.get(i) == Some(&'{') {
                            while i < chars.len() && chars[i] != '}' {
                                i += 1;
                            }
                            i += 1;
                        }
                        Piece::Class(printable_pool())
                    }
                    other => Piece::Literal(other),
                }
            }
            c => {
                i += 1;
                Piece::Literal(c)
            }
        };
        let (quant, next) = parse_quant(&chars, i);
        i = next;
        out.push((piece, quant));
    }
    out
}

/// Generate a string matching the supported-regex `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut s = String::new();
    for (piece, quant) in parse(pattern) {
        let n = rng.gen_range(quant.lo..=quant.hi);
        for _ in 0..n {
            match &piece {
                Piece::Literal(c) => s.push(*c),
                Piece::Class(pool) if pool.is_empty() => {}
                Piece::Class(pool) => s.push(pool[rng.gen_range(0..pool.len())]),
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn class_with_bounds() {
        let mut rng = rng_for("class");
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z]{1,20}", &mut rng);
            assert!(!s.is_empty() && s.chars().count() <= 20);
            assert!(s.chars().all(|c| c.is_ascii_alphabetic()), "{s:?}");
        }
    }

    #[test]
    fn printable_star() {
        let mut rng = rng_for("pc");
        for _ in 0..200 {
            let s = generate_matching("\\PC*", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut rng = rng_for("lit");
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        assert_eq!(generate_matching("a\\.b", &mut rng), "a.b");
        let d = generate_matching("\\d{3}", &mut rng);
        assert_eq!(d.len(), 3);
        assert!(d.chars().all(|c| c.is_ascii_digit()));
    }
}
