//! The [`Strategy`] trait and core combinators (no shrinking).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategies compose behind references too (the `proptest!` macro
/// generates through `&strategy`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals are regex-subset strategies (see [`crate::string`]).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}
