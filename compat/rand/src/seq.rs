//! Sequence helpers (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Slice extensions: Fisher–Yates shuffle and uniform element choice.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
    }
}
