//! Shim for the `rand` 0.8 API subset used in this workspace. The build
//! environment has no network access and an empty cargo registry, so
//! external crates are vendored as minimal API-compatible shims under
//! `compat/` (see the workspace README).
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded via SplitMix64 —
//! a high-quality, fast, fully deterministic PRNG. The stream differs
//! from upstream rand's ChaCha12-based `StdRng`, which is fine here:
//! the workspace relies on *determinism for a fixed seed*, never on a
//! specific upstream stream.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// A source of random `u64`s (the shim's single core primitive).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte buffer with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draw uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )+};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the exclusive endpoint
                // (next_down handles negative and zero endpoints too).
                if v < self.end { v } else { self.end.next_down() }
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t as Standard>::draw(rng) * (hi - lo)
            }
        }
    )+};
}

float_sample_range!(f32, f64);

/// The user-facing random-value interface (rand 0.8 style).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (rand 0.8 style).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&y));
            let z = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn float_range_endpoint_guard_handles_nonpositive_ends() {
        let mut rng = StdRng::seed_from_u64(21);
        // Ranges ending at and below zero: the rounding fallback must
        // stay inside the half-open range (no NaN, no v >= end).
        for _ in 0..10_000 {
            let a = rng.gen_range(-1.0f64..0.0);
            assert!((-1.0..0.0).contains(&a), "{a}");
            let b = rng.gen_range(-3.0f64..-1.0);
            assert!((-3.0..-1.0).contains(&b), "{b}");
        }
        // Denormal-width range forces the v == end fallback directly.
        let lo = f64::from_bits((-1.5e-43f64).to_bits());
        let hi = lo + (lo.abs() * 0.2);
        for _ in 0..1_000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "{v} outside [{lo}, {hi})");
            assert!(!v.is_nan());
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }
}
