//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ seeded via SplitMix64. Deterministic, `Clone`, fast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}

impl StdRng {
    /// The raw xoshiro256++ state words, for durable snapshots.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from previously captured [`StdRng::state`]
    /// words. The all-zero state is a xoshiro fixed point, so it is
    /// remapped the same way seeding remaps it.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return StdRng {
                s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
            };
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// Alias: the shim's small RNG is the same generator.
pub type SmallRng = StdRng;
