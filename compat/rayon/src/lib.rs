//! Shim for the `rayon` API subset used in this workspace, backed by
//! `std::thread::scope`. The build environment has no network access
//! and an empty cargo registry, so external crates are vendored as
//! minimal API-compatible shims under `compat/` (see the workspace
//! README).
//!
//! Supported shape: `slice.par_iter().map(f).collect::<Vec<_>>()` (plus
//! `filter_map` and [`join`]). Work is split into contiguous chunks —
//! one per available core — and results are written back **in input
//! order**, so `collect` is deterministic regardless of scheduling.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim: join worker panicked"))
    })
}

fn worker_count(items: usize) -> usize {
    // Honor rayon's own env convention so thread count can be forced —
    // e.g. RAYON_NUM_THREADS=4 on a single-core box to genuinely
    // exercise cross-thread behavior.
    let configured = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    configured
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(items)
        .max(1)
}

/// Order-preserving parallel map over a slice.
fn par_map_slice<'a, T: Sync, R: Send>(items: &'a [T], f: impl Fn(&'a T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        for (src, dst) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            s.spawn(move || {
                for (slot, item) in dst.iter_mut().zip(src) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("rayon-shim: worker panicked"))
        .collect()
}

/// Entry point: `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: 'a;
    /// The parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Map + filter in one pass, preserving input order.
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> Option<R> + Sync,
    {
        ParFilterMap {
            items: self.items,
            f,
        }
    }
}

/// Result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// Result of [`ParIter::filter_map`].
pub struct ParFilterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// The subset of rayon's `ParallelIterator` this workspace needs:
/// terminal `collect` on mapped parallel iterators.
pub trait ParallelIterator {
    /// Produced item type.
    type Item: Send;

    /// Evaluate in parallel, preserving input order.
    fn to_vec(self) -> Vec<Self::Item>;

    /// Collect into any `FromIterator` container (input order).
    fn collect<C: FromIterator<Self::Item>>(self) -> C
    where
        Self: Sized,
    {
        self.to_vec().into_iter().collect()
    }
}

impl<'a, T, R, F> ParallelIterator for ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Item = R;
    fn to_vec(self) -> Vec<R> {
        par_map_slice(self.items, self.f)
    }
}

impl<'a, T, R, F> ParallelIterator for ParFilterMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> Option<R> + Sync,
{
    type Item = R;
    fn to_vec(self) -> Vec<R> {
        par_map_slice(self.items, self.f)
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_filter_map_preserves_order() {
        let v: Vec<u64> = (0..100).collect();
        let evens: Vec<u64> = v
            .par_iter()
            .filter_map(|x| if x % 2 == 0 { Some(*x) } else { None })
            .collect();
        assert_eq!(evens, (0..100).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
