//! Shim for the `criterion` API subset used by `crates/bench`. The
//! build environment has no network access and an empty cargo registry,
//! so external crates are vendored as minimal API-compatible shims
//! under `compat/` (see the workspace README).
//!
//! This is a *timing harness*, not a statistics engine: each benchmark
//! closure is warmed up once and then timed over an adaptive iteration
//! count targeting a small per-bench time budget, and mean wall-clock
//! time per iteration is printed. Good enough to catch order-of-
//! magnitude regressions and to keep `cargo bench` runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-bench measurement budget (keeps full `cargo bench` runs fast).
const TIME_BUDGET: Duration = Duration::from_millis(60);

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from just a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing callback handed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            mean_ns: f64::NAN,
            iters: 0,
        }
    }

    /// Time `routine` over fresh inputs from `setup` (setup excluded
    /// from timing). The shim runs a fixed small iteration count since
    /// per-iteration setup cost is unknown.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        black_box(routine(setup())); // warm-up
        let iters = 5u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }

    /// Time `routine`, adaptively choosing the iteration count.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warm-up
        let probe = Instant::now();
        black_box(routine());
        let one = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (TIME_BUDGET.as_nanos() / one.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters > 0 {
        println!(
            "bench  {name:<52} {:>12}/iter  ({} iters)",
            human(b.mean_ns),
            b.iters
        );
    } else {
        println!("bench  {name:<52}   (no measurement: b.iter never called)");
    }
}

/// The benchmark manager (shim).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is
    /// adaptive, so the sample size is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark over one input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Run a named benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
                b.iter(|| black_box(n * n))
            });
        g.finish();
    }
}
