//! Cross-crate integration: the full DMMS lifecycle of Fig. 2, driven
//! through the public facade — discovery, integration, evaluation,
//! pricing, settlement, revenue sharing, accountability and audit.

use data_market_platform::core::market::{DataMarket, MarketConfig, OfferState};
use data_market_platform::mechanism::design::MarketDesign;
use data_market_platform::mechanism::wtp::PriceCurve;
use data_market_platform::relation::{DataType, RelationBuilder, Value};
use data_market_platform::tasks::synth::intro_example;

fn posted_market(price: f64) -> DataMarket {
    DataMarket::new(
        MarketConfig::external(11).with_design(MarketDesign::posted_price_baseline(price)),
    )
}

#[test]
fn paper_intro_example_full_lifecycle() {
    let ex = intro_example(600, 42);
    let market = posted_market(40.0);

    let s1 = market.seller("seller1");
    let id1 = s1.share(ex.s1).unwrap();
    let s2 = market.seller("seller2");
    let id2 = s2.share(ex.s2).unwrap();

    let b1 = market.buyer("b1");
    b1.deposit(500.0);
    let offer = b1
        .wtp(["a", "b", "c", "fd"])
        .classification("label")
        .pay_steps(&[(0.8, 100.0), (0.9, 150.0)])
        .with_owned_data(ex.buyer_owned)
        .min_rows(50)
        .submit()
        .unwrap();

    let report = market.run_round();

    // A sale happened at the posted price, with accuracy above the bar.
    assert_eq!(report.sales.len(), 1);
    let sale = &report.sales[0];
    assert!(sale.satisfaction >= 0.8, "accuracy {}", sale.satisfaction);
    assert_eq!(sale.price, 40.0);

    // Money: buyer debited, both sellers credited, books balance.
    assert!((market.balance("b1") - 460.0).abs() < 1e-9);
    let seller_total = market.balance("seller1") + market.balance("seller2");
    assert!((seller_total - 40.0).abs() < 1e-9);
    assert!(market.balance("seller1") > 0.0);
    assert!(market.balance("seller2") > 0.0);

    // The offer is fulfilled and the delivery carries the mashup.
    assert!(matches!(
        market.offer(offer).unwrap().state,
        OfferState::Fulfilled { .. }
    ));
    let delivery = &b1.deliveries()[0];
    assert!(delivery.relation.schema().contains("label"));
    assert!(delivery.relation.len() >= 50);

    // Accountability: both sellers can see the sale and their revenue.
    for (seller, id) in [(&s1, id1), (&s2, id2)] {
        let acct = seller.accountability(id).unwrap();
        assert_eq!(acct.mashups, vec![format!("offer{offer}")]);
        assert!(acct.revenue > 0.0);
    }

    // Trust: the audit chain verifies and records the whole story.
    assert!(market.audit_log().verify_chain());
    assert!(market.audit_log().len() >= 5);
    assert!(!market.audit_log().events_for_dataset(id1).is_empty());
}

#[test]
fn pending_offers_retry_across_rounds_as_supply_arrives() {
    let market = posted_market(10.0);
    let buyer = market.buyer("b");
    buyer.deposit(100.0);
    let offer = buyer
        .wtp(["late_attr"])
        .price_curve(PriceCurve::Constant(20.0))
        .submit()
        .unwrap();

    // Round 1: nothing to sell.
    let r1 = market.run_round();
    assert!(r1.sales.is_empty());
    assert_eq!(market.offer(offer).unwrap().state, OfferState::Pending);
    assert!(r1
        .unmet
        .missing_attributes
        .iter()
        .any(|(a, _)| a == "late_attr"));

    // An opportunistic seller reads the demand report and fills the gap.
    let demand = market.demand_report();
    assert_eq!(demand.missing_attributes[0].0, "late_attr");
    let seller = market.seller("opportunist");
    let mut b = RelationBuilder::new("gap_filler").column("late_attr", DataType::Int);
    for i in 0..20 {
        b = b.row(vec![Value::Int(i)]);
    }
    seller.share(b.build().unwrap()).unwrap();

    // Round 2: the pending offer clears.
    let r2 = market.run_round();
    assert_eq!(r2.sales.len(), 1);
    assert!(matches!(
        market.offer(offer).unwrap().state,
        OfferState::Fulfilled { .. }
    ));
    assert!(seller.balance() > 0.0);
}

#[test]
fn conservation_of_money_across_many_rounds() {
    let market = posted_market(7.0);
    let mut total_deposited = 0.0;
    for i in 0..3 {
        let seller = market.seller(&format!("s{i}"));
        let mut b = RelationBuilder::new(format!("t{i}"))
            .column(format!("k{i}"), DataType::Int)
            .column(format!("v{i}"), DataType::Float);
        for r in 0..30 {
            b = b.row(vec![Value::Int(r), Value::Float(r as f64)]);
        }
        seller.share(b.build().unwrap()).unwrap();
    }
    for i in 0..5 {
        let buyer = market.buyer(&format!("b{i}"));
        buyer.deposit(50.0);
        total_deposited += 50.0;
        buyer
            .wtp([format!("k{}", i % 3), format!("v{}", i % 3)])
            .price_curve(PriceCurve::Constant(15.0))
            .submit()
            .unwrap();
    }
    let mut revenue = 0.0;
    for _ in 0..4 {
        revenue += market.run_round().revenue;
    }
    assert!(revenue > 0.0);
    // Sum of every account (buyers + sellers + arbiter) equals deposits.
    let all: f64 = [
        "b0",
        "b1",
        "b2",
        "b3",
        "b4",
        "s0",
        "s1",
        "s2",
        "__arbiter__",
    ]
    .iter()
    .map(|a| market.balance(a))
    .sum();
    assert!(
        (all - total_deposited).abs() < 1e-6,
        "supply {all} vs deposits {total_deposited}"
    );
}

#[test]
fn recommendations_emerge_from_purchases() {
    let market = posted_market(5.0);
    for (i, name) in ["alpha", "beta"].iter().enumerate() {
        let seller = market.seller(&format!("s_{name}"));
        let mut b = RelationBuilder::new(format!("{name}_data"))
            .column(format!("{name}_key"), DataType::Int)
            .column(format!("{name}_val"), DataType::Float);
        for r in 0..20 {
            b = b.row(vec![Value::Int(r + i as i64), Value::Float(r as f64)]);
        }
        seller.share(b.build().unwrap()).unwrap();
    }
    // Two buyers buy both products; a third buys only alpha.
    for name in ["b1", "b2"] {
        let buyer = market.buyer(name);
        buyer.deposit(100.0);
        for p in ["alpha", "beta"] {
            buyer
                .wtp([format!("{p}_key"), format!("{p}_val")])
                .price_curve(PriceCurve::Constant(10.0))
                .submit()
                .unwrap();
        }
    }
    let b3 = market.buyer("b3");
    b3.deposit(100.0);
    b3.wtp(["alpha_key", "alpha_val"])
        .price_curve(PriceCurve::Constant(10.0))
        .submit()
        .unwrap();
    market.run_round();

    // b3 should be recommended the beta dataset its co-purchasers bought.
    let recs = b3.recommendations(3);
    assert!(!recs.is_empty(), "CF should find the co-purchase pattern");
}
