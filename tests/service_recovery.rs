//! End-to-end durability through the facade crate: a gateway session
//! over a real socket, a `kill -9`-equivalent crash (the process state
//! is discarded, the journal tail is torn mid-record), and a recovery
//! that restores the exact ledger and continues serving.

use std::path::PathBuf;
use std::sync::Arc;

use data_market_platform::core::market::MarketConfig;
use data_market_platform::mechanism::design::MarketDesign;
use data_market_platform::service::client::Client;
use data_market_platform::service::gateway::{Gateway, GatewayConfig};
use data_market_platform::service::node::{ServiceConfig, ServiceNode};
use data_market_platform::service::shard::fnv1a;
use data_market_platform::service::wire::Json;

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dmp-facade-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn service_config(dir: &std::path::Path) -> ServiceConfig {
    let market = MarketConfig::external(31).with_design(MarketDesign::posted_price_baseline(10.0));
    ServiceConfig::new(dir.to_path_buf(), market)
        .with_shards(2)
        .with_fsync(false)
        .with_snapshot_every(8)
}

#[test]
fn gateway_session_survives_a_hard_crash() {
    let dir = tmp_dir("hard-crash");

    // Names that co-locate on one shard (offers match within a shard;
    // cross-shard trades are a ROADMAP follow-on).
    let buyer = "acme-analytics".to_string();
    let target = fnv1a(buyer.as_bytes()) % 2;
    let seller = (0..)
        .map(|i| format!("weather-{i}"))
        .find(|n| fnv1a(n.as_bytes()) % 2 == target)
        .unwrap();

    // Session 1: drive a full market session over the wire — 6 market
    // commands, then a sink enrollment and 3 trailing sink deposits
    // (commands 7..10, crossing the snapshot-every-8 threshold). Then
    // "kill -9" it: drop node and gateway with no shutdown ceremony and
    // tear the final journal record in half, as a crash mid-append
    // would.
    let balance_before = {
        let node = Arc::new(ServiceNode::open(service_config(&dir)).unwrap());
        let gateway = Gateway::serve(Arc::clone(&node), GatewayConfig::default()).unwrap();
        let mut c = Client::connect(gateway.addr()).unwrap();
        c.post(
            "/enroll",
            &Json::obj([
                ("name", Json::str(seller.clone())),
                ("role", Json::str("seller")),
            ]),
        )
        .unwrap();
        c.post(
            "/enroll",
            &Json::obj([
                ("name", Json::str(buyer.clone())),
                ("role", Json::str("buyer")),
                ("deposit", Json::Num(100.0)),
            ]),
        )
        .unwrap();
        c.post(
            "/asks",
            &Json::parse(&format!(
                r#"{{"seller":"{seller}","table":{{"name":"temps",
                    "columns":[["city","str"],["temp","float"]],
                    "rows":[["chicago",3.5],["boston",1.0]]}}}}"#
            ))
            .unwrap(),
        )
        .unwrap();
        c.post(
            "/offers",
            &Json::parse(&format!(
                r#"{{"buyer":"{buyer}","attributes":["city","temp"],
                    "curve":{{"kind":"constant","price":25}}}}"#
            ))
            .unwrap(),
        )
        .unwrap();
        let rounds = c
            .post("/rounds", &Json::parse(r#"{"rounds":1}"#).unwrap())
            .unwrap();
        assert_eq!(
            rounds.req_arr("rounds").unwrap()[0]
                .get("sales")
                .and_then(Json::as_u64),
            Some(1),
            "the round must clear the sale before the crash"
        );
        // Trailing mutations on an unrelated account; the last of these
        // is what the crash will tear off.
        c.post(
            "/enroll",
            &Json::parse(r#"{"name":"sink","role":"buyer"}"#).unwrap(),
        )
        .unwrap();
        for _ in 0..3 {
            c.post(
                "/deposits",
                &Json::obj([("account", Json::str("sink")), ("amount", Json::Num(5.0))]),
            )
            .unwrap();
        }
        assert_eq!(node.applied(), 10);
        let balance = c
            .get(&format!("/ledger/{buyer}"))
            .unwrap()
            .req_f64("balance")
            .unwrap();
        assert!(balance < 100.0, "buyer must have paid");
        balance
        // node + gateway drop here without any flush/close ceremony.
    };

    // Applying 10 commands crossed the snapshot threshold: recovery
    // gets to exercise the `snapshot + journal replay` path, not just
    // replay-from-genesis.
    assert!(
        data_market_platform::service::snapshot::load_latest(&dir).is_some(),
        "session must have checkpointed a snapshot at seq 8"
    );

    // Tear the final journal record (the third sink deposit) in half.
    let journal = dir.join("journal.wal");
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 3]).unwrap();

    // Session 2: recover and keep serving.
    let node = Arc::new(ServiceNode::open(service_config(&dir)).unwrap());
    assert_eq!(
        node.applied(),
        9,
        "recovery = snapshot(8) + journal tail minus the torn record"
    );
    let gateway = Gateway::serve(Arc::clone(&node), GatewayConfig::default()).unwrap();
    let mut c = Client::connect(gateway.addr()).unwrap();

    // The market accounts are bit-identical; only the torn sink deposit
    // was (correctly) lost.
    let balance_after = c
        .get(&format!("/ledger/{buyer}"))
        .unwrap()
        .req_f64("balance")
        .unwrap();
    assert_eq!(
        balance_after.to_bits(),
        balance_before.to_bits(),
        "recovered buyer balance must be bit-identical"
    );
    assert_eq!(
        c.get(&format!("/ledger/{seller}"))
            .unwrap()
            .req_f64("balance")
            .unwrap(),
        node.router().balance(&seller)
    );
    assert_eq!(node.router().balance("sink"), 10.0, "torn deposit dropped");

    // And the recovered node keeps transacting.
    c.post(
        "/deposits",
        &Json::obj([
            ("account", Json::str(buyer.clone())),
            ("amount", Json::Num(10.0)),
        ]),
    )
    .unwrap();
    let topped_up = c
        .get(&format!("/ledger/{buyer}"))
        .unwrap()
        .req_f64("balance")
        .unwrap();
    // Compare in whole micro-credits: the ledger stores integer micros,
    // while `balance_after + 10.0` is a float-domain sum.
    assert_eq!(
        (topped_up * 1e6).round() as i64,
        ((balance_after + 10.0) * 1e6).round() as i64,
        "post-recovery deposits apply on top of the recovered ledger"
    );

    gateway.shutdown();
}
