//! Whole-market determinism tests for the staged arbiter pipeline:
//! for a fixed market seed, the rayon-parallel candidate stage must
//! produce byte-identical rounds to the sequential reference path, and
//! repeated runs must pick identical tie-break winners.

use data_market_platform::core::arbiter::pipeline::{
    CandidateStage, ClearingStage, ExpiryStage, RoundStage, SettlementStage,
};
use data_market_platform::core::market::{DataMarket, MarketConfig, RoundReport};
use data_market_platform::mechanism::design::MarketDesign;
use data_market_platform::mechanism::wtp::{PriceCurve, WtpFunction};
use data_market_platform::relation::{DataType, RelationBuilder, Value};

/// A market with several interchangeable suppliers per product (tied
/// bids force tie-break draws) and several buyers.
fn populated_market(seed: u64) -> DataMarket {
    let market = DataMarket::new(
        MarketConfig::external(seed).with_design(MarketDesign::posted_price_baseline(12.0)),
    );
    for s in 0..4u64 {
        let seller = market.seller(&format!("s{s}"));
        let mut b = RelationBuilder::new(format!("t{s}"))
            .column("k", DataType::Int)
            .column("v", DataType::Float);
        for r in 0..6 {
            // Distinct content per seller so the DoD anchor dedup keeps
            // every supplier as its own candidate.
            b = b.row(vec![
                Value::Int((s * 100 + r) as i64),
                Value::Float(s as f64 + r as f64 * 0.25),
            ]);
        }
        seller.share(b.build().unwrap()).unwrap();
    }
    for i in 0..5u64 {
        let buyer = market.buyer(&format!("b{i}"));
        buyer.deposit(200.0);
        market
            .submit_wtp(WtpFunction::simple(
                format!("b{i}"),
                ["k", "v"],
                PriceCurve::Constant(20.0 + i as f64),
            ))
            .unwrap();
    }
    market
}

fn sequential_pipeline() -> Vec<Box<dyn RoundStage>> {
    vec![
        Box::new(ExpiryStage),
        Box::new(CandidateStage::sequential()),
        Box::new(ClearingStage),
        Box::new(SettlementStage),
    ]
}

fn assert_same_report(a: &RoundReport, b: &RoundReport) {
    assert_eq!(a.round, b.round);
    assert_eq!(a.considered, b.considered);
    assert_eq!(a.sales, b.sales);
    assert_eq!(a.revenue, b.revenue);
    assert_eq!(a.fees, b.fees);
    assert_eq!(a.expired, b.expired);
    assert_eq!(a.deliveries, b.deliveries);
}

#[test]
fn parallel_rounds_match_sequential_reference() {
    for seed in [1, 7, 23, 91] {
        let par = populated_market(seed);
        let seq = populated_market(seed);
        let seq_stages = sequential_pipeline();
        for _ in 0..3 {
            let ra = par.run_round(); // default pipeline: rayon candidates
            let rb = seq.run_round_with(&seq_stages);
            assert_same_report(&ra, &rb);
        }
        // Every downstream artifact matches too.
        assert_eq!(par.transactions().len(), seq.transactions().len());
        for (ta, tb) in par.transactions().iter().zip(seq.transactions()) {
            assert_eq!(ta.datasets, tb.datasets, "seed {seed}: different winners");
            assert_eq!(ta.price, tb.price);
            assert_eq!(ta.buyer, tb.buyer);
        }
        for s in 0..4 {
            let acct = format!("s{s}");
            assert_eq!(
                par.balance(&acct),
                seq.balance(&acct),
                "seed {seed}: {acct}"
            );
        }
        assert!(par.audit_log().verify_chain());
        assert!(seq.audit_log().verify_chain());
    }
}

#[test]
fn same_seed_same_winners_across_runs() {
    let reference: Vec<_> = {
        let m = populated_market(42);
        m.run_round();
        m.transactions()
            .iter()
            .map(|t| t.datasets.clone())
            .collect()
    };
    assert!(!reference.is_empty(), "fixture must trade");
    for _ in 0..5 {
        let m = populated_market(42);
        m.run_round();
        let winners: Vec<_> = m
            .transactions()
            .iter()
            .map(|t| t.datasets.clone())
            .collect();
        assert_eq!(
            winners, reference,
            "same seed must reproduce the same winners"
        );
    }
}

#[test]
fn different_seeds_spread_demand_across_tied_suppliers() {
    let mut winner_sets = std::collections::HashSet::new();
    for seed in 0..12 {
        let m = populated_market(seed);
        m.run_round();
        for t in m.transactions() {
            winner_sets.insert(t.datasets.clone());
        }
    }
    assert!(
        winner_sets.len() > 1,
        "tie-breaking should rotate winners across seeds, got {winner_sets:?}"
    );
}
