//! Integration: licensing (§4.4), contextual integrity, disputes, and
//! the privacy-coordinated seller pipeline — the trust fabric around the
//! core trade loop.

use data_market_platform::core::license::{ContextualIntegrityPolicy, License};
use data_market_platform::core::market::{DataMarket, MarketConfig, OfferState};
use data_market_platform::mechanism::design::MarketDesign;
use data_market_platform::mechanism::wtp::PriceCurve;
use data_market_platform::privacy::dp::DpParams;
use data_market_platform::relation::builder::keyed_rel;
use data_market_platform::relation::{DataType, RelationBuilder, Value};

fn market() -> DataMarket {
    DataMarket::new(
        MarketConfig::external(31).with_design(MarketDesign::posted_price_baseline(20.0)),
    )
}

#[test]
fn exclusive_license_taxes_and_locks() {
    let m = market();
    let seller = m.seller("s");
    let id = seller
        .share(keyed_rel("sig", &[(1, "a"), (2, "b")]))
        .unwrap();
    seller
        .set_license(
            id,
            License::Exclusive {
                tax_rate: 0.5,
                hold_rounds: 1,
            },
        )
        .unwrap();

    let b1 = m.buyer("b1");
    b1.deposit(100.0);
    b1.wtp(["k", "v"])
        .price_curve(PriceCurve::Constant(60.0))
        .submit()
        .unwrap();
    let r1 = m.run_round();
    // posted 20 × 1.5 exclusivity tax
    assert!((r1.sales[0].price - 30.0).abs() < 1e-9);

    // Another buyer is locked out while the hold lasts.
    let b2 = m.buyer("b2");
    b2.deposit(100.0);
    let offer2 = b2
        .wtp(["k", "v"])
        .price_curve(PriceCurve::Constant(60.0))
        .submit()
        .unwrap();
    let r2 = m.run_round();
    assert!(r2.sales.is_empty(), "exclusive hold must deny b2");

    // After the hold expires, the pending offer clears.
    let r3 = m.run_round();
    let served_later = !r3.sales.is_empty()
        || matches!(m.offer(offer2).unwrap().state, OfferState::Fulfilled { .. });
    assert!(served_later, "hold expired; b2 should be served");
}

#[test]
fn contextual_integrity_blocks_forbidden_purpose() {
    let m = market();
    let seller = m.seller("hospital");
    let id = seller.share(keyed_rel("cohort", &[(1, "x")])).unwrap();
    seller
        .set_ci_policy(
            id,
            ContextualIntegrityPolicy::restricted(
                "healthcare",
                vec!["buyer".into()], // role every market buyer carries
                vec!["advertising".into()],
            ),
        )
        .unwrap();

    // Research purpose: allowed.
    let researcher = m.buyer("researcher");
    researcher.deposit(100.0);
    researcher
        .wtp(["k", "v"])
        .price_curve(PriceCurve::Constant(30.0))
        .purpose("research")
        .submit()
        .unwrap();
    let r = m.run_round();
    assert_eq!(r.sales.len(), 1);

    // Advertising purpose: denied.
    let adtech = m.buyer("adtech");
    adtech.deposit(100.0);
    adtech
        .wtp(["k", "v"])
        .price_curve(PriceCurve::Constant(30.0))
        .purpose("advertising")
        .submit()
        .unwrap();
    let r = m.run_round();
    assert!(r.sales.is_empty(), "CI policy must block advertising use");
}

#[test]
fn disputes_record_and_resolve() {
    let m = market();
    m.seller("s").share(keyed_rel("g", &[(1, "x")])).unwrap();
    let buyer = m.buyer("b");
    buyer.deposit(100.0);
    buyer
        .wtp(["k"])
        .price_curve(PriceCurve::Constant(25.0))
        .submit()
        .unwrap();
    let r = m.run_round();
    assert_eq!(r.sales.len(), 1);

    let dispute = buyer.dispute(0, "rows were stale");
    assert_eq!(m.disputes().open_count(), 1);
    assert!(m.disputes().resolve(dispute, 5.0));
    assert_eq!(m.disputes().open_count(), 0);
}

#[test]
fn privacy_pipeline_end_to_end() {
    let m = market();
    let seller = m.seller("clinic");

    // PII table refused.
    let mut b = RelationBuilder::new("patients")
        .column("email", DataType::Str)
        .column("days", DataType::Int);
    for i in 0..30 {
        b = b.row(vec![
            Value::str(format!("p{i}@x.org")),
            Value::Int((i % 10) as i64),
        ]);
    }
    let raw = b.build().unwrap();
    assert!(seller.share(raw.clone()).is_err());

    // DP release accepted and sellable.
    let safe = raw.project(&["days"]).unwrap().named("patients_safe");
    let id = seller
        .share_private(safe, &["days"], DpParams::new(1.0, 1.0), 2.0)
        .unwrap();

    let buyer = m.buyer("lab");
    buyer.deposit(100.0);
    buyer
        .wtp(["days"])
        .price_curve(PriceCurve::Constant(40.0))
        .submit()
        .unwrap();
    let r = m.run_round();
    assert_eq!(r.sales.len(), 1);

    // Accountability reflects the ε spend and the sale; audit verifies.
    let acct = seller.accountability(id).unwrap();
    assert_eq!(acct.privacy_spent, 1.0);
    assert!(acct.revenue > 0.0);
    assert!(m.audit_log().verify_chain());
}

#[test]
fn freshness_constraint_excludes_stale_data() {
    let m = market();
    let seller = m.seller("s");
    seller.share(keyed_rel("old", &[(1, "x")])).unwrap();
    // Advance logical time far beyond the buyer's freshness window by
    // running many empty rounds.
    for _ in 0..30 {
        m.run_round();
    }
    let buyer = m.buyer("b");
    buyer.deposit(100.0);
    let mut constraints = data_market_platform::mechanism::wtp::IntrinsicConstraints::none();
    constraints.max_age = Some(2);
    buyer
        .wtp(["k", "v"])
        .price_curve(PriceCurve::Constant(30.0))
        .constraints(constraints)
        .submit()
        .unwrap();
    let r = m.run_round();
    assert!(r.sales.is_empty(), "stale dataset must be filtered");

    // A fresh dataset satisfies the same offer next round.
    seller.share(keyed_rel("fresh", &[(1, "y")])).unwrap();
    let r = m.run_round();
    assert_eq!(r.sales.len(), 1);
}
