//! Whole-market property tests: for *random* markets (random supply,
//! random demands, random prices), the platform invariants must hold —
//! money conservation, audit-chain integrity, budget-balanced revenue
//! shares, and offer-state sanity.

use proptest::prelude::*;

use data_market_platform::core::market::{DataMarket, MarketConfig, OfferState};
use data_market_platform::mechanism::design::MarketDesign;
use data_market_platform::mechanism::wtp::{PriceCurve, WtpFunction};
use data_market_platform::relation::{DataType, RelationBuilder, Value};

/// Random market inputs.
#[derive(Debug, Clone)]
struct MarketInput {
    posted_price: f64,
    tables: Vec<(u8, Vec<i64>)>,  // (schema variant, key values)
    demands: Vec<(u8, f64, f64)>, // (variant wanted, max price, deposit)
    rounds: u8,
}

fn inputs() -> impl Strategy<Value = MarketInput> {
    (
        1.0f64..50.0,
        prop::collection::vec((0u8..3, prop::collection::vec(0i64..30, 1..20)), 1..5),
        prop::collection::vec((0u8..3, 1.0f64..80.0, 0.0f64..120.0), 1..8),
        1u8..4,
    )
        .prop_map(|(posted_price, tables, demands, rounds)| MarketInput {
            posted_price,
            tables,
            demands,
            rounds,
        })
}

fn variant_cols(v: u8) -> (String, String) {
    (format!("key_{v}"), format!("val_{v}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn market_invariants_hold_for_random_markets(input in inputs()) {
        let market = DataMarket::new(
            MarketConfig::external(5)
                .with_design(MarketDesign::posted_price_baseline(input.posted_price)),
        );

        // Supply.
        for (i, (variant, keys)) in input.tables.iter().enumerate() {
            let seller = market.seller(&format!("s{i}"));
            let (kc, vc) = variant_cols(*variant);
            let mut b = RelationBuilder::new(format!("t{i}"))
                .column(&kc, DataType::Int)
                .column(&vc, DataType::Float);
            for k in keys {
                b = b.row(vec![Value::Int(*k), Value::Float(*k as f64 * 0.5)]);
            }
            let _ = seller.share(b.build().unwrap());
        }

        // Demand.
        let mut deposited = 0.0;
        for (i, (variant, max_price, deposit)) in input.demands.iter().enumerate() {
            let buyer = market.buyer(&format!("b{i}"));
            buyer.deposit(*deposit);
            // The ledger rounds amounts to micro-credit granularity at
            // the boundary; mirror that in the expected mint.
            deposited += (*deposit * 1e6).round() / 1e6;
            let (kc, vc) = variant_cols(*variant);
            let wtp = WtpFunction::simple(
                format!("b{i}"),
                [kc, vc],
                PriceCurve::Linear { min_satisfaction: 0.3, max_price: *max_price },
            );
            let _ = market.submit_wtp(wtp);
        }

        // Rounds.
        let mut revenue = 0.0;
        let mut fees = 0.0;
        for _ in 0..input.rounds {
            let report = market.run_round();
            revenue += report.revenue;
            fees += report.fees;
            // Every sale's price respects the posted-price design.
            for sale in &report.sales {
                prop_assert!(sale.price <= input.posted_price + 1e-9);
                prop_assert!(sale.satisfaction >= 0.0 && sale.satisfaction <= 1.0);
            }
        }
        prop_assert!(fees <= revenue + 1e-9);

        // Conservation: every account (buyers, sellers, arbiter) sums to
        // exactly what was deposited.
        let mut total = market.balance("__arbiter__");
        for i in 0..input.tables.len() {
            total += market.balance(&format!("s{i}"));
        }
        for i in 0..input.demands.len() {
            total += market.balance(&format!("b{i}"));
        }
        prop_assert!(
            (total - deposited).abs() < 1e-6,
            "supply {total} != deposits {deposited}"
        );

        // Transaction records are budget-balanced: shares + fee = price.
        for tx in market.transactions() {
            let shared: f64 = tx.shares.iter().map(|s| s.amount).sum();
            prop_assert!(
                (shared + tx.fee - tx.price).abs() < 1e-6,
                "tx {}: shares {shared} + fee {} != price {}",
                tx.id,
                tx.fee,
                tx.price
            );
        }

        // Offer states are consistent: fulfilled offers reference real
        // transactions; no offer is in a dangling state.
        let tx_ids: Vec<u64> = market.transactions().iter().map(|t| t.id).collect();
        for offer in market.offers() {
            match offer.state {
                OfferState::Fulfilled { tx } => prop_assert!(tx_ids.contains(&tx)),
                OfferState::Pending | OfferState::Expired => {}
                OfferState::AwaitingReport { .. } => {
                    prop_assert!(false, "ex ante market cannot await reports")
                }
            }
        }

        // The audit chain always verifies.
        prop_assert!(market.audit_log().verify_chain());
    }

    /// Buyers can never be charged more than their declared maximum,
    /// whatever the posted price.
    #[test]
    fn never_charged_above_declared_max(posted in 1.0f64..100.0, max_price in 1.0f64..100.0) {
        let market = DataMarket::new(
            MarketConfig::external(5).with_design(MarketDesign::posted_price_baseline(posted)),
        );
        let seller = market.seller("s");
        let mut b = RelationBuilder::new("t").column("k", DataType::Int);
        for i in 0..10 {
            b = b.row(vec![Value::Int(i)]);
        }
        seller.share(b.build().unwrap()).unwrap();
        let buyer = market.buyer("b");
        buyer.deposit(1_000.0);
        market
            .submit_wtp(WtpFunction::simple("b", ["k"], PriceCurve::Constant(max_price)))
            .unwrap();
        let report = market.run_round();
        for sale in &report.sales {
            prop_assert!(sale.price <= max_price + 1e-9);
            prop_assert!(sale.price <= posted + 1e-9);
        }
        // A sale happens exactly when the buyer's max covers the posted price.
        prop_assert_eq!(!report.sales.is_empty(), max_price >= posted);
    }
}
