//! Integration: the ex post elicitation market (§3.2.2.2) — buyers get
//! data before paying, report realized value, and the audit/penalty
//! mechanism keeps them honest.

use data_market_platform::core::market::{DataMarket, MarketConfig, OfferState};
use data_market_platform::mechanism::design::MarketDesign;
use data_market_platform::mechanism::elicitation::{ElicitationProtocol, ExPostMechanism};
use data_market_platform::mechanism::wtp::PriceCurve;
use data_market_platform::relation::builder::keyed_rel;

fn ex_post_market(audit_prob: f64) -> DataMarket {
    let mut design = MarketDesign::posted_price_baseline(10.0);
    design.elicitation = ElicitationProtocol::ExPost(ExPostMechanism {
        audit_prob,
        penalty_mult: 2.5,
        exclusion_rounds: 3,
        round_value: 0.0,
    });
    DataMarket::new(MarketConfig::external(99).with_design(design))
}

#[test]
fn delivery_precedes_payment() {
    let market = ex_post_market(1.0);
    let seller = market.seller("s");
    seller
        .share(keyed_rel("goods", &[(1, "x"), (2, "y")]))
        .unwrap();
    let buyer = market.buyer("b");
    buyer.deposit(100.0);
    let offer = buyer
        .wtp(["k", "v"])
        .price_curve(PriceCurve::Constant(30.0))
        .submit()
        .unwrap();

    let report = market.run_round();
    assert_eq!(report.deliveries.len(), 1);
    assert_eq!(report.revenue, 0.0, "no money moves before the report");
    assert!(matches!(
        market.offer(offer).unwrap().state,
        OfferState::AwaitingReport { .. }
    ));
    // The deposit (max price) is escrowed.
    assert!((buyer.balance() - 70.0).abs() < 1e-9);
    // The buyer already has the data.
    let delivery = &buyer.deliveries()[0];
    assert_eq!(delivery.relation.len(), 2);
    assert!(delivery.settlement.is_none());
}

#[test]
fn truthful_report_settles_cleanly() {
    let market = ex_post_market(1.0);
    let seller = market.seller("s");
    seller.share(keyed_rel("goods", &[(1, "x")])).unwrap();
    let buyer = market.buyer("b");
    buyer.deposit(100.0);
    buyer
        .wtp(["k", "v"])
        .price_curve(PriceCurve::Constant(30.0))
        .submit()
        .unwrap();
    let report = market.run_round();
    let delivery_id = report.deliveries[0];

    // The true value for a fully-satisfying mashup is the curve price.
    let settlement = buyer.report_value(delivery_id, 30.0).unwrap();
    assert!(settlement.audited);
    assert_eq!(settlement.penalty, 0.0);
    assert!((settlement.paid - 30.0).abs() < 1e-9);
    // Seller got paid; escrow residue refunded; books balance.
    assert!(seller.balance() > 0.0);
    assert!(
        (buyer.balance() + seller.balance() + market.balance("__arbiter__") - 100.0).abs() < 1e-6
    );
    // Reputation intact.
    assert_eq!(market.participant("b").unwrap().reputation, 1.0);
}

#[test]
fn underreporting_is_caught_and_penalized() {
    let market = ex_post_market(1.0); // always audited
    let seller = market.seller("s");
    seller.share(keyed_rel("goods", &[(1, "x")])).unwrap();
    let buyer = market.buyer("cheater");
    buyer.deposit(200.0);
    buyer
        .wtp(["k", "v"])
        .price_curve(PriceCurve::Constant(50.0))
        .submit()
        .unwrap();
    let report = market.run_round();
    let delivery_id = report.deliveries[0];

    // True value ≈ 50 (full coverage); the buyer reports 10.
    let settlement = buyer.report_value(delivery_id, 10.0).unwrap();
    assert!(settlement.audited);
    assert!(settlement.penalty > 0.0, "under-report must be penalized");

    // Reputation hit + exclusion.
    let p = market.participant("cheater").unwrap();
    assert!(p.reputation < 1.0);
    assert!(p.excluded_until > market.round());

    // Excluded buyers cannot submit new offers.
    let err = buyer
        .wtp(["k"])
        .price_curve(PriceCurve::Constant(5.0))
        .submit();
    assert!(err.is_err());
}

#[test]
fn double_reporting_rejected() {
    let market = ex_post_market(0.0);
    market
        .seller("s")
        .share(keyed_rel("g", &[(1, "x")]))
        .unwrap();
    let buyer = market.buyer("b");
    buyer.deposit(100.0);
    buyer
        .wtp(["k"])
        .price_curve(PriceCurve::Constant(20.0))
        .submit()
        .unwrap();
    let report = market.run_round();
    let id = report.deliveries[0];
    buyer.report_value(id, 20.0).unwrap();
    assert!(buyer.report_value(id, 20.0).is_err());
}

#[test]
fn report_capped_by_deposit_keeps_books_balanced() {
    let market = ex_post_market(0.0);
    market
        .seller("s")
        .share(keyed_rel("g", &[(1, "x")]))
        .unwrap();
    let buyer = market.buyer("b");
    buyer.deposit(100.0);
    buyer
        .wtp(["k", "v"])
        .price_curve(PriceCurve::Constant(30.0))
        .submit()
        .unwrap();
    let report = market.run_round();
    // Over-reporting beyond the escrowed cap is clamped.
    let settlement = buyer.report_value(report.deliveries[0], 9_999.0).unwrap();
    assert!(settlement.paid <= 30.0 + 1e-9);
    let total = buyer.balance() + market.balance("s") + market.balance("__arbiter__");
    assert!((total - 100.0).abs() < 1e-6);
}
